package netsim

import (
	"fmt"

	"repro/internal/core"
)

// EventKind labels a trace event.
type EventKind int

// Trace event kinds, in rough dataflow order.
const (
	// EvRelease: a source released one RT frame (one per frame, so a
	// period with C=3 yields three events).
	EvRelease EventKind = iota
	// EvShaperHold: the switch held an early frame until its downlink
	// eligibility instant.
	EvShaperHold
	// EvDeliver: an RT frame reached its destination RT layer.
	EvDeliver
	// EvMiss: the delivered frame violated its guarantee.
	EvMiss
	// EvAdmitted: the switch accepted an establishment request.
	EvAdmitted
	// EvRejected: the switch rejected an establishment request.
	EvRejected
	// EvNonRTDrop: a bounded FCFS queue dropped a best-effort frame.
	EvNonRTDrop
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EvRelease:
		return "release"
	case EvShaperHold:
		return "hold"
	case EvDeliver:
		return "deliver"
	case EvMiss:
		return "MISS"
	case EvAdmitted:
		return "admit"
	case EvRejected:
		return "reject"
	case EvNonRTDrop:
		return "drop"
	default:
		return fmt.Sprintf("ev(%d)", int(k))
	}
}

// TraceEvent is one timestamped observation from inside the network.
type TraceEvent struct {
	At      int64 // slot
	Kind    EventKind
	Node    core.NodeID    // the node the event concerns (source, destination, requester)
	Channel core.ChannelID // 0 when not channel-related
	Value   int64          // kind-specific: deadline, delay, hold-until, ...
}

// String implements fmt.Stringer.
func (e TraceEvent) String() string {
	return fmt.Sprintf("[%6d] %-7s node=%d ch=%d v=%d", e.At, e.Kind, e.Node, e.Channel, e.Value)
}

// Tracer receives every trace event. Implementations must be cheap — the
// hot path calls them per frame.
type Tracer interface {
	Trace(TraceEvent)
}

// RingTracer retains the most recent Cap events with O(1) insertion —
// the flight-recorder pattern: always on, inspected after something
// interesting happened.
type RingTracer struct {
	buf   []TraceEvent
	next  int
	total int64
}

// NewRingTracer returns a tracer retaining the last capacity events.
func NewRingTracer(capacity int) *RingTracer {
	if capacity <= 0 {
		capacity = 1024
	}
	return &RingTracer{buf: make([]TraceEvent, 0, capacity)}
}

// Trace implements Tracer.
func (r *RingTracer) Trace(e TraceEvent) {
	r.total++
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// Total returns how many events were observed (including evicted ones).
func (r *RingTracer) Total() int64 { return r.total }

// Events returns the retained events oldest-first.
func (r *RingTracer) Events() []TraceEvent {
	out := make([]TraceEvent, 0, len(r.buf))
	if len(r.buf) == cap(r.buf) {
		out = append(out, r.buf[r.next:]...)
		out = append(out, r.buf[:r.next]...)
		return out
	}
	return append(out, r.buf...)
}

// FilterTracer forwards only selected kinds to the inner tracer.
type FilterTracer struct {
	Inner Tracer
	Keep  map[EventKind]bool
}

// Trace implements Tracer.
func (f FilterTracer) Trace(e TraceEvent) {
	if f.Keep[e.Kind] {
		f.Inner.Trace(e)
	}
}

// SetTracer installs a tracer; nil disables tracing (the default).
// Install before running traffic.
func (n *Network) SetTracer(t Tracer) { n.tracer = t }

// emit sends an event to the installed tracer, if any.
func (n *Network) emit(kind EventKind, node core.NodeID, ch core.ChannelID, value int64) {
	if n.tracer == nil {
		return
	}
	n.tracer.Trace(TraceEvent{At: n.eng.Now(), Kind: kind, Node: node, Channel: ch, Value: value})
}
