package netsim

import (
	"testing"

	"repro/internal/core"
)

// TestFaultInjectionCorruption flips a byte in every 7th frame on the
// wire: the codecs' checksum/length validation must catch every corrupted
// frame (counted as bad), the rest must flow normally, and nothing may
// panic.
func TestFaultInjectionCorruption(t *testing.T) {
	count := 0
	cfg := Config{
		FaultInjector: func(_ int64, b []byte) []byte {
			count++
			if count%7 == 0 {
				c := append([]byte(nil), b...)
				c[len(c)-1] ^= 0xFF
				if len(c) > 20 {
					c[20] ^= 0x10 // also clip an IP header byte
				}
				return c
			}
			return b
		},
	}
	n := buildStar(cfg, 1, 2)
	id, err := n.EstablishChannel(spec(1, 2, 3, 100, 40))
	if err != nil {
		// Establishment frames can be corrupted too; retry until through.
		for i := 0; i < 5 && err != nil; i++ {
			id, err = n.EstablishChannel(spec(1, 2, 3, 100, 40))
		}
		if err != nil {
			t.Fatalf("establishment never survived corruption: %v", err)
		}
	}
	if err := n.Node(1).StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Engine().Now() + 2000)
	rep := n.Report()
	if rep.BadFrames == 0 {
		t.Error("no corrupted frames detected despite injection")
	}
	m := rep.Channels[id]
	if m == nil || m.Delivered == 0 {
		t.Fatal("no clean frames delivered")
	}
	// Clean frames still meet their deadlines.
	if m.Misses != 0 {
		t.Errorf("clean frames missed deadlines: %d", m.Misses)
	}
}

// TestFaultInjectionLoss drops every 5th frame: delivery shrinks
// accordingly, never crashes, and the loss is visible as the gap between
// released and delivered.
func TestFaultInjectionLoss(t *testing.T) {
	count := 0
	cfg := Config{
		FaultInjector: func(_ int64, b []byte) []byte {
			count++
			if count%5 == 0 {
				return nil
			}
			return b
		},
	}
	n := buildStar(cfg, 1, 2)
	var id core.ChannelID
	var err error
	for i := 0; i < 10; i++ {
		if id, err = n.EstablishChannel(spec(1, 2, 3, 100, 40)); err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("establishment never survived loss: %v", err)
	}
	if err := n.Node(1).StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Engine().Now() + 2000)
	rep := n.Report()
	m := rep.Channels[id]
	if m == nil || m.Delivered == 0 {
		t.Fatal("nothing delivered")
	}
	// ~20 periods x 3 frames = 60 released; with 20% loss per hop
	// (applied twice) roughly 64% survive. Expect well under released and
	// well over zero.
	if m.Delivered >= 60 {
		t.Errorf("delivered %d, expected visible loss", m.Delivered)
	}
	if rep.BadFrames != 0 {
		t.Errorf("loss should not count as bad frames: %d", rep.BadFrames)
	}
}

// TestFaultInjectionNilPassthrough: a nil injector config changes nothing.
func TestFaultInjectionNilPassthrough(t *testing.T) {
	n := buildStar(Config{}, 1, 2)
	id, err := n.EstablishChannel(spec(1, 2, 1, 50, 10))
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Node(1).StartTraffic(id, 0); err != nil {
		t.Fatal(err)
	}
	n.Run(n.Engine().Now() + 500)
	if n.Report().Channels[id].Delivered == 0 {
		t.Fatal("baseline broken")
	}
}
