// Package netsim models the paper's star network on top of the
// deterministic event engine: end-nodes and a store-and-forward switch
// connected by full-duplex links, with the RT layer's queues and EDF
// scheduling in both (Fig. 18.2), the establishment protocol of §18.2.2
// flowing as real encoded frames, and per-channel delay/deadline
// accounting at the receivers.
//
// Timing model: one slot is the transmission time of one maximal frame.
// A transmitter makes its scheduling decision at a slot boundary (after
// all deliveries and releases at that instant — the engine's priority
// phases guarantee the ordering) and the frame lands at the far end one
// slot later, plus the configured constant propagation delay. This is the
// paper's model exactly: all P, C and d are "expressed as the number of
// maximal sized frames", and T_latency is a system-specific constant
// (Eq. 18.1).
package netsim

import (
	"repro/internal/sched"
	"repro/internal/sim"
)

// transmitter drives one link direction: it owns the port's two output
// queues and transmits one frame per slot while work is pending.
type transmitter struct {
	eng     *sim.Engine
	port    *sched.Port
	deliver func(payload []byte, class sched.Class)

	// extra is the constant propagation delay added to every delivery,
	// in whole slots (part of T_latency).
	extra int64

	// fault, when non-nil, may corrupt or drop a frame on the wire.
	fault func(slot int64, b []byte) []byte

	dropped int64 // frames the fault injector removed

	busy          bool
	decidePending bool
	busySlots     int64 // slots spent transmitting (observed utilization)
}

func newTransmitter(eng *sim.Engine, cfg *Config, deliver func([]byte, sched.Class)) *transmitter {
	return &transmitter{
		eng:     eng,
		port:    sched.NewPortWithDiscipline(cfg.NonRTQueueCap, cfg.Discipline),
		deliver: deliver,
		extra:   cfg.Propagation,
		fault:   cfg.FaultInjector,
	}
}

// enqueueRT inserts an RT frame with its link-local absolute and relative
// deadlines and arms the transmitter.
func (tx *transmitter) enqueueRT(absDeadline, relDeadline int64, payload []byte) {
	tx.port.EnqueueRT(absDeadline, relDeadline, payload)
	tx.kick()
}

// enqueueNonRT appends a best-effort frame; false if the bounded FCFS
// queue dropped it.
func (tx *transmitter) enqueueNonRT(payload []byte) bool {
	ok := tx.port.EnqueueNonRT(payload)
	if ok {
		tx.kick()
	}
	return ok
}

// kick arranges a transmit decision at the current instant's decide phase
// unless one is already pending or a frame is in flight.
func (tx *transmitter) kick() {
	if tx.busy || tx.decidePending || !tx.port.Busy() {
		return
	}
	tx.decidePending = true
	tx.eng.AtPrio(tx.eng.Now(), sim.PrioDecide, tx.decide)
}

// decide dequeues the next frame per the port policy (EDF first, then
// FCFS) and puts it on the wire for one slot.
func (tx *transmitter) decide() {
	tx.decidePending = false
	if tx.busy {
		return
	}
	payload, class, ok := tx.port.Next()
	if !ok {
		return
	}
	tx.busy = true
	tx.busySlots++
	frameBytes := payload.([]byte)
	// The link is free again after one slot (transmission time); the frame
	// lands after transmission plus propagation. Propagation does not
	// occupy the transmitter — links pipeline.
	tx.eng.AtPrio(tx.eng.Now()+1, sim.PrioDeliver, func() {
		tx.busy = false
		tx.kick()
	})
	tx.eng.AtPrio(tx.eng.Now()+1+tx.extra, sim.PrioDeliver, func() {
		b := frameBytes
		if tx.fault != nil {
			if b = tx.fault(tx.eng.Now(), b); b == nil {
				tx.dropped++
				return
			}
		}
		tx.deliver(b, class)
	})
}
