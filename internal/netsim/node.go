package netsim

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Node is one end-node: application, RT layer and uplink transmitter
// (the left half of Fig. 18.2). The RT layer stamps outgoing RT
// datagrams with their absolute deadline, keeps the deadline-sorted
// uplink queue, runs the source half of the establishment protocol and
// measures arriving RT traffic against its guarantees.
type Node struct {
	net *Network
	id  core.NodeID
	mac frame.MAC
	ip  frame.IPv4

	up *transmitter // to the switch

	// Establishment client state.
	nextReqID uint8
	pending   map[uint8]func(core.ChannelID, error)

	// AcceptPolicy decides whether this node, as a destination, accepts
	// an incoming RT channel request. Defaults to accepting everything.
	AcceptPolicy func(frame.Request) bool

	// Traffic sources for channels originating here. sourceOrder keeps
	// attachment order so (re)arming is deterministic — map iteration
	// order must never influence the schedule.
	sources     map[core.ChannelID]*source
	sourceOrder []core.ChannelID

	// Receiver-side metrics.
	rxChannels map[core.ChannelID]*ChannelMetrics
	rxNonRT    *stats.Delay
	rxNonRTN   int64
	rxBadFrame int64

	seq uint64 // payload sequence numbers for frames sent by this node
}

// source generates the periodic traffic of one RT channel: C_i maximal
// frames every P_i slots, starting at the offset.
type source struct {
	channel core.ChannelID
	spec    core.ChannelSpec
	next    int64
	armed   bool
	stopped bool
	sent    int64
}

func newNode(n *Network, id core.NodeID) *Node {
	node := &Node{
		net:          n,
		id:           id,
		mac:          frame.NodeMAC(uint16(id)),
		ip:           frame.NodeIP(uint16(id)),
		pending:      make(map[uint8]func(core.ChannelID, error)),
		AcceptPolicy: func(frame.Request) bool { return true },
		sources:      make(map[core.ChannelID]*source),
		rxChannels:   make(map[core.ChannelID]*ChannelMetrics),
		rxNonRT:      stats.NewDelay(0),
	}
	node.up = newTransmitter(n.eng, &n.cfg,
		func(b []byte, class sched.Class) { n.sw.ingress(node, b, class) })
	return node
}

// ID returns the node's identifier.
func (nd *Node) ID() core.NodeID { return nd.id }

// MAC returns the node's Ethernet address.
func (nd *Node) MAC() frame.MAC { return nd.mac }

// requestChannel starts the establishment handshake: it encodes a
// RequestFrame (Fig. 18.3) and queues it on the uplink as control
// traffic. done fires when the matching ResponseFrame arrives.
func (nd *Node) requestChannel(spec core.ChannelSpec, done func(core.ChannelID, error)) {
	reqID := nd.nextReqID
	nd.nextReqID++
	if _, busy := nd.pending[reqID]; busy {
		done(0, fmt.Errorf("netsim: node %d has 256 establishment requests in flight", nd.id))
		return
	}
	nd.pending[reqID] = done
	req := frame.Request{
		SrcMAC:   nd.mac,
		DstMAC:   frame.NodeMAC(uint16(spec.Dst)),
		SrcIP:    nd.ip,
		DstIP:    frame.NodeIP(uint16(spec.Dst)),
		Period:   uint32(spec.P),
		Capacity: uint32(spec.C),
		Deadline: uint32(spec.D),
		ReqID:    reqID,
	}
	nd.up.enqueueNonRT(req.Encode())
}

// StartTraffic attaches a periodic source for an established channel
// originating at this node, with the given release offset (phase).
func (nd *Node) StartTraffic(id core.ChannelID, offset int64) error {
	ch := nd.net.ctrl.State().Get(id)
	if ch == nil {
		return fmt.Errorf("netsim: channel %d not established", id)
	}
	if ch.Spec.Src != nd.id {
		return fmt.Errorf("netsim: channel %d originates at node %d, not %d", id, ch.Spec.Src, nd.id)
	}
	if _, dup := nd.sources[id]; dup {
		return fmt.Errorf("netsim: channel %d already has a source", id)
	}
	start := nd.net.eng.Now() + offset
	nd.sources[id] = &source{channel: id, spec: ch.Spec, next: start}
	nd.sourceOrder = append(nd.sourceOrder, id)
	nd.armSources()
	return nil
}

func (nd *Node) stopSource(id core.ChannelID) {
	if s := nd.sources[id]; s != nil {
		s.stopped = true
		delete(nd.sources, id)
	}
}

// armSources (re)schedules release events for all sources whose next
// release falls within the network horizon, in attachment order.
func (nd *Node) armSources() {
	for _, id := range nd.sourceOrder {
		if s := nd.sources[id]; s != nil {
			nd.armSource(s)
		}
	}
}

func (nd *Node) armSource(s *source) {
	if s.armed || s.stopped {
		return
	}
	// The clock may have moved past the next release while the source was
	// unarmed (e.g. establishment handshakes for later channels consumed
	// time before the first Run). Missed periods are not released
	// retroactively — the generator was simply not running yet.
	for now := nd.net.eng.Now(); s.next < now; {
		s.next += s.spec.P
	}
	if s.next > nd.net.horizon {
		return
	}
	s.armed = true
	nd.net.eng.AtPrio(s.next, sim.PrioRelease, func() { nd.release(s) })
}

// release emits one period's worth of frames (C_i maximal frames) for a
// channel: each frame is stamped with the absolute end-to-end deadline
// (release + d_i) and EDF-queued on the uplink under the uplink-local
// deadline (release + d_iu) from the channel's current partition.
func (nd *Node) release(s *source) {
	s.armed = false
	if s.stopped {
		return
	}
	now := nd.net.eng.Now()
	ch := nd.net.ctrl.State().Get(s.channel)
	if ch == nil { // torn down concurrently
		s.stopped = true
		return
	}
	for k := int64(0); k < s.spec.C; k++ {
		payload := make([]byte, 16)
		binary.BigEndian.PutUint64(payload[0:8], uint64(now))
		binary.BigEndian.PutUint64(payload[8:16], nd.seq)
		nd.seq++
		d := frame.Data{
			SrcMAC:   nd.mac,
			DstMAC:   frame.NodeMAC(uint16(s.spec.Dst)),
			Deadline: now + s.spec.D,
			Channel:  uint16(s.channel),
			Payload:  payload,
		}
		raw, err := frame.EncodeData(d)
		if err != nil {
			panic(fmt.Sprintf("netsim: encoding RT frame: %v", err))
		}
		nd.net.emit(EvRelease, nd.id, s.channel, d.Deadline)
		nd.up.enqueueRT(now+ch.Part.Up, ch.Part.Up, raw)
		s.sent++
	}
	s.next += s.spec.P
	nd.armSource(s)
}

// CloseChannel initiates a wire-level teardown of a channel originating
// at this node: the local source stops immediately and a Teardown frame
// travels to the switch, which releases the reservation and notifies the
// destination. (Extension — the paper defines establishment only.)
func (nd *Node) CloseChannel(id core.ChannelID) error {
	ch := nd.net.ctrl.State().Get(id)
	if ch == nil {
		return fmt.Errorf("netsim: unknown channel %d", id)
	}
	if ch.Spec.Src != nd.id {
		return fmt.Errorf("netsim: channel %d originates at node %d, not %d", id, ch.Spec.Src, nd.id)
	}
	nd.stopSource(id)
	nd.up.enqueueNonRT(frame.Teardown{SrcMAC: nd.mac, Channel: uint16(id)}.Encode())
	return nil
}

// SendNonRT queues one best-effort frame to another node; the payload is
// prefixed with the send slot so the receiver can measure delay. It
// reports false if the bounded FCFS queue dropped the frame.
func (nd *Node) SendNonRT(dst core.NodeID, payload []byte) bool {
	buf := make([]byte, 8+len(payload))
	binary.BigEndian.PutUint64(buf[0:8], uint64(nd.net.eng.Now()))
	copy(buf[8:], payload)
	p := frame.Plain{
		SrcMAC:  nd.mac,
		DstMAC:  frame.NodeMAC(uint16(dst)),
		SrcIP:   nd.ip,
		DstIP:   frame.NodeIP(uint16(dst)),
		Payload: buf,
	}
	raw, err := frame.EncodePlain(p)
	if err != nil {
		panic(fmt.Sprintf("netsim: encoding non-RT frame: %v", err))
	}
	ok := nd.up.enqueueNonRT(raw)
	if !ok {
		nd.net.emit(EvNonRTDrop, nd.id, 0, 0)
	}
	return ok
}

// receive handles a frame delivered on the node's downlink.
func (nd *Node) receive(b []byte, _ sched.Class) {
	if nd.net.linkDown[nd.id] {
		// The link died with the frame in flight (or queued): drop it, and
		// account RT data as a miss at this receiver.
		if frame.Classify(b) == frame.KindRTData {
			if _, chID, err := frame.PeekDeadline(b); err == nil {
				nd.net.rtLinkDrops++
				nd.noteLinkDrop(core.ChannelID(chID))
			}
		}
		return
	}
	switch frame.Classify(b) {
	case frame.KindRTData:
		nd.receiveRTData(b)
	case frame.KindConnect:
		nd.receiveConnect(b)
	case frame.KindResponse:
		nd.receiveResponse(b)
	case frame.KindTeardown:
		// Destination-side notification: per-channel receive state stays
		// for reporting; nothing to free in this model.
	default:
		nd.receiveNonRT(b)
	}
}

// noteLinkDrop counts a frame lost to a dead link as a missed deadline
// of the channel at this receiver — data that never arrives is the
// hardest possible deadline miss.
func (nd *Node) noteLinkDrop(id core.ChannelID) {
	m := nd.rxChannels[id]
	if m == nil {
		m = newChannelMetrics()
		nd.rxChannels[id] = m
	}
	m.Misses++
}

// receiveRTData validates and measures an RT datagram against the
// channel's guarantee T_max = d_i + T_latency (Eq. 18.1).
func (nd *Node) receiveRTData(b []byte) {
	d, err := frame.DecodeData(b)
	if err != nil || len(d.Payload) < 16 {
		nd.rxBadFrame++
		return
	}
	id := core.ChannelID(d.Channel)
	m := nd.rxChannels[id]
	if m == nil {
		m = newChannelMetrics()
		nd.rxChannels[id] = m
	}
	release := int64(binary.BigEndian.Uint64(d.Payload[0:8]))
	now := nd.net.eng.Now()
	delay := now - release
	m.Delays.Observe(delay)
	m.Delivered++
	nd.net.emit(EvDeliver, nd.id, id, delay)
	// The stamped absolute deadline bounds queueing+transmission; the
	// constant propagation component is admitted on top (Eq. 18.1).
	if now > d.Deadline+nd.net.ExtraLatency() {
		m.Misses++
		nd.net.emit(EvMiss, nd.id, id, delay)
	}
}

// receiveConnect runs the destination side of the handshake: accept or
// reject per policy, answering with a ResponseFrame (Fig. 18.4) sent as
// control traffic on the uplink.
func (nd *Node) receiveConnect(b []byte) {
	req, err := frame.DecodeRequest(b)
	if err != nil {
		nd.rxBadFrame++
		return
	}
	resp := frame.Response{
		Channel: req.Channel,
		Accept:  nd.AcceptPolicy(req),
		ReqID:   req.ReqID,
	}
	nd.up.enqueueNonRT(resp.Encode(frame.SwitchMAC))
}

// receiveResponse completes a pending establishment request at the
// source.
func (nd *Node) receiveResponse(b []byte) {
	resp, err := frame.DecodeResponse(b)
	if err != nil {
		nd.rxBadFrame++
		return
	}
	done := nd.pending[resp.ReqID]
	if done == nil {
		nd.rxBadFrame++
		return
	}
	delete(nd.pending, resp.ReqID)
	if !resp.Accept {
		done(0, core.ErrInfeasible)
		return
	}
	done(core.ChannelID(resp.Channel), nil)
}

// receiveNonRT measures best-effort delivery.
func (nd *Node) receiveNonRT(b []byte) {
	p, err := frame.DecodePlain(b)
	if err != nil || len(p.Payload) < 8 {
		nd.rxBadFrame++
		return
	}
	sent := int64(binary.BigEndian.Uint64(p.Payload[0:8]))
	nd.rxNonRT.Observe(nd.net.eng.Now() - sent)
	nd.rxNonRTN++
}

// UplinkBusySlots returns the slots this node's uplink spent transmitting.
func (nd *Node) UplinkBusySlots() int64 { return nd.up.busySlots }

// UplinkDrops returns non-RT frames dropped at this node's uplink queue.
func (nd *Node) UplinkDrops() int64 { return nd.up.port.Drops() }
