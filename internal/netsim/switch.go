package netsim

import (
	"repro/internal/core"
	"repro/internal/frame"
	"repro/internal/sched"
)

// Switch is the store-and-forward switch with the RT layer of Fig. 18.2:
// per-port output queue pairs (EDF + FCFS), the RT channel management
// entity that runs admission control on RequestFrames, and — beyond the
// paper — an optional release-guard shaper that keeps the downlink's
// periodic-task model exact (see Config.DisableShaping).
type Switch struct {
	net *Network

	// down holds one transmitter per attached node (the switch port
	// facing that node).
	down map[core.NodeID]*transmitter
	// macs maps node MACs to IDs for forwarding.
	macs map[frame.MAC]core.NodeID

	// dataplane is the RT channel forwarding table: channel → destination
	// set (one entry for unicast, the sink set for multicast fan-out).
	dataplane map[core.ChannelID][]core.NodeID
	// pendingResp tracks establishment handshakes awaiting the
	// destination's ResponseFrame: channel → requesting node.
	pendingResp map[core.ChannelID]core.NodeID

	// Counters.
	rtForwarded    int64
	nonRTForwarded int64
	shapedHolds    int64
	unroutable     int64
	badFrames      int64
}

func newSwitch(n *Network) *Switch {
	return &Switch{
		net:         n,
		down:        make(map[core.NodeID]*transmitter),
		macs:        make(map[frame.MAC]core.NodeID),
		dataplane:   make(map[core.ChannelID][]core.NodeID),
		pendingResp: make(map[core.ChannelID]core.NodeID),
	}
}

func (sw *Switch) attachNode(node *Node) {
	nd := node // capture for the closure
	sw.down[node.id] = newTransmitter(sw.net.eng, &sw.net.cfg,
		func(b []byte, class sched.Class) { nd.receive(b, class) })
	sw.macs[node.mac] = node.id
}

func (sw *Switch) forget(id core.ChannelID) {
	delete(sw.dataplane, id)
	delete(sw.pendingResp, id)
}

// ingress handles a frame arriving from a node's uplink.
func (sw *Switch) ingress(from *Node, b []byte, _ sched.Class) {
	if sw.net.linkDown[from.id] {
		sw.dropDead(b)
		return
	}
	switch frame.Classify(b) {
	case frame.KindRTData:
		sw.ingressRTData(b)
	case frame.KindConnect:
		sw.ingressConnect(from, b)
	case frame.KindResponse:
		sw.ingressResponse(b)
	case frame.KindTeardown:
		sw.ingressTeardown(from, b)
	default:
		sw.ingressNonRT(b)
	}
}

// dropDead accounts a frame lost crossing a dead uplink. RT data counts
// as a miss at every destination it would have reached; control and
// best-effort frames vanish, as they would on a real unplugged cable.
func (sw *Switch) dropDead(b []byte) {
	if frame.Classify(b) != frame.KindRTData {
		return
	}
	_, chID, err := frame.PeekDeadline(b)
	if err != nil {
		return
	}
	id := core.ChannelID(chID)
	sw.net.rtLinkDrops++
	for _, dst := range sw.dataplane[id] {
		if node := sw.net.nodes[dst]; node != nil {
			node.noteLinkDrop(id)
		}
	}
}

// ingressTeardown releases a channel on request of its source node and
// forwards the notification to the destination.
func (sw *Switch) ingressTeardown(from *Node, b []byte) {
	td, err := frame.DecodeTeardown(b)
	if err != nil {
		sw.badFrames++
		return
	}
	id := core.ChannelID(td.Channel)
	ch := sw.net.ctrl.State().Get(id)
	if ch == nil || ch.Spec.Src != from.id {
		// Unknown channel or a node trying to tear down someone else's.
		sw.badFrames++
		return
	}
	dsts := fanout(ch)
	sw.forget(id)
	_ = sw.net.ctrl.Release(id)
	for i, dst := range dsts {
		tx := sw.down[dst]
		if tx == nil {
			continue
		}
		copyB := b
		if i > 0 {
			copyB = append([]byte(nil), b...)
		}
		tx.enqueueNonRT(copyB)
	}
}

// ingressRTData forwards an RT datagram to the destination port's EDF
// queue under its stamped absolute deadline — for a multicast channel,
// to every sink port, each copy scheduled independently under the
// shared downlink budget. With shaping enabled the frame only becomes
// eligible at absDeadline - d_id — a frame that beat its uplink budget
// waits out the difference, so the downlink never sees a release
// pattern burstier than the periodic one its feasibility test assumed.
func (sw *Switch) ingressRTData(b []byte) {
	deadline, chID, err := frame.PeekDeadline(b)
	if err != nil {
		sw.badFrames++
		return
	}
	id := core.ChannelID(chID)
	dsts, ok := sw.dataplane[id]
	if !ok {
		sw.unroutable++
		return
	}
	ch := sw.net.ctrl.State().Get(id)
	if ch == nil {
		sw.unroutable++
		return
	}
	now := sw.net.eng.Now()
	eligible := deadline - ch.Part.Down
	for i, dst := range dsts {
		tx := sw.down[dst]
		if tx == nil {
			sw.unroutable++
			continue
		}
		sw.rtForwarded++
		copyB := b
		if i > 0 {
			// Fan-out replicates the frame; each sink's copy must be
			// independent (delivery hooks may mutate the bytes).
			copyB = append([]byte(nil), b...)
		}
		if !sw.net.cfg.DisableShaping && eligible > now {
			sw.shapedHolds++
			sw.net.emit(EvShaperHold, dst, id, eligible)
			held := copyB
			sw.net.eng.At(eligible, func() { tx.enqueueRT(deadline, ch.Part.Down, held) })
			continue
		}
		tx.enqueueRT(deadline, ch.Part.Down, copyB)
	}
}

// fanout returns a channel's destination set for the forwarding table:
// the sink set of a multicast channel, the single destination otherwise.
func fanout(ch *core.Channel) []core.NodeID {
	if ch.Multicast() {
		return ch.Sinks
	}
	return []core.NodeID{ch.Spec.Dst}
}

// ingressConnect is the RT channel management entry point (§18.2.2): run
// the feasibility test; on success assign the network-unique channel ID,
// install nothing yet, and forward the RequestFrame to the destination;
// on failure answer the source directly with a rejecting ResponseFrame.
func (sw *Switch) ingressConnect(from *Node, b []byte) {
	req, err := frame.DecodeRequest(b)
	if err != nil {
		sw.badFrames++
		return
	}
	dstID, ok := sw.macs[req.DstMAC]
	if !ok {
		sw.reply(from.id, frame.Response{Accept: false, ReqID: req.ReqID})
		return
	}
	spec := core.ChannelSpec{
		Src: from.id,
		Dst: dstID,
		P:   int64(req.Period),
		C:   int64(req.Capacity),
		D:   int64(req.Deadline),
	}
	ch, err := sw.net.ctrl.Request(spec)
	if err != nil {
		sw.net.lastReject = err
		sw.net.emit(EvRejected, from.id, 0, 0)
		sw.reply(from.id, frame.Response{Accept: false, ReqID: req.ReqID})
		return
	}
	sw.net.emit(EvAdmitted, from.id, ch.ID, int64(ch.Part.Up))
	// Feasible: forward the request, now carrying the assigned ID, to the
	// destination for its consent.
	req.Channel = uint16(ch.ID)
	sw.pendingResp[ch.ID] = from.id
	fwd := req.Encode()
	// Rewrite the Ethernet header: switch → destination node.
	dstMAC := frame.NodeMAC(uint16(dstID))
	copy(fwd[0:6], dstMAC[:])
	copy(fwd[6:12], frame.SwitchMAC[:])
	if tx := sw.down[dstID]; tx != nil {
		tx.enqueueNonRT(fwd)
	}
}

// ingressResponse completes the handshake: on acceptance the dataplane
// entry goes live and the response is forwarded to the source; on
// rejection the tentatively admitted channel is released first.
func (sw *Switch) ingressResponse(b []byte) {
	resp, err := frame.DecodeResponse(b)
	if err != nil {
		sw.badFrames++
		return
	}
	id := core.ChannelID(resp.Channel)
	src, ok := sw.pendingResp[id]
	if !ok {
		sw.badFrames++
		return
	}
	delete(sw.pendingResp, id)
	if resp.Accept {
		if ch := sw.net.ctrl.State().Get(id); ch != nil {
			sw.dataplane[id] = fanout(ch)
		}
	} else {
		_ = sw.net.ctrl.Release(id)
	}
	sw.reply(src, resp)
}

// ingressNonRT forwards best-effort traffic by destination MAC through
// the FCFS queue of the destination port.
func (sw *Switch) ingressNonRT(b []byte) {
	h, err := frame.ParseHeader(b)
	if err != nil {
		sw.badFrames++
		return
	}
	dst, ok := sw.macs[h.Dst]
	if !ok {
		sw.unroutable++
		return
	}
	sw.nonRTForwarded++
	sw.down[dst].enqueueNonRT(b)
}

// reply queues a ResponseFrame to a node as control traffic.
func (sw *Switch) reply(to core.NodeID, resp frame.Response) {
	if tx := sw.down[to]; tx != nil {
		tx.enqueueNonRT(resp.Encode(frame.NodeMAC(uint16(to))))
	}
}

// DownlinkBusySlots returns the observed busy slots of one switch port.
func (sw *Switch) DownlinkBusySlots(id core.NodeID) int64 {
	if tx := sw.down[id]; tx != nil {
		return tx.busySlots
	}
	return 0
}

// DownlinkDrops returns non-RT drops at one switch port.
func (sw *Switch) DownlinkDrops(id core.NodeID) int64 {
	if tx := sw.down[id]; tx != nil {
		return tx.port.Drops()
	}
	return 0
}

// Counters returns the switch's forwarding counters: RT and non-RT frames
// forwarded, shaper holds, unroutable frames and undecodable frames.
func (sw *Switch) Counters() (rt, nonRT, shaped, unroutable, bad int64) {
	return sw.rtForwarded, sw.nonRTForwarded, sw.shapedHolds, sw.unroutable, sw.badFrames
}
