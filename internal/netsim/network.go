package netsim

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/sched"
	"repro/internal/sim"
)

// Config tunes the simulated network.
type Config struct {
	// DPS is the deadline partitioning scheme used by the switch's
	// admission control; nil means SDPS.
	DPS core.DPS
	// DisableShaping turns off the switch's release-guard regulator, which
	// holds a frame back from the downlink queue until
	// absDeadline - d_id. Shaping (the default) makes the downlink's
	// periodic-task assumption hold exactly; disabling it reproduces the
	// paper's naive work-conserving behaviour for the ablation experiment.
	DisableShaping bool
	// NonRTQueueCap bounds every FCFS queue (frames); 0 = unbounded.
	NonRTQueueCap int
	// Discipline selects the RT queue ordering on every link: EDF (the
	// paper's scheduler, the default), FIFO or DM. Admission control is
	// EDF-based regardless — mismatched combinations exist to demonstrate
	// (experiment E11) that the analysis is only valid for the dispatcher
	// it models.
	Discipline sched.Discipline
	// Propagation is the constant per-hop propagation delay in whole
	// slots (one half of T_latency; a channel crosses two hops).
	Propagation int64
	// FaultInjector, when non-nil, intercepts every frame at delivery:
	// it may corrupt the bytes (return a modified slice) or drop the
	// frame entirely (return nil). Used by failure-injection tests to
	// verify the RT layer degrades gracefully — corrupt frames are
	// counted and discarded by the codecs' checksum/length validation,
	// never crash the stack.
	FaultInjector func(slot int64, b []byte) []byte
	// Feasibility passes through to the admission controller.
	Feasibility edf.Options
	// VerifyWorkers passes through to the admission controller's
	// verification worker pool (0 = GOMAXPROCS, 1 = sequential).
	VerifyWorkers int
	// FullRecheck passes through to the admission controller: every
	// loaded link is re-verified on each request instead of only the
	// changed set, bypassing the sweep verdict cache. Decisions are
	// identical either way.
	FullRecheck bool
}

// ErrUnknownNode is the sentinel wrapped by every establishment failure
// caused by an endpoint that is not an attached end-node — the star
// network's "no route" condition. errors.Is(err, ErrUnknownNode)
// matches regardless of which endpoint was unknown.
var ErrUnknownNode = errors.New("netsim: unknown end-node")

// Network is one star network: a switch plus end-nodes, sharing a
// deterministic event engine. Network itself is not safe for concurrent
// use — every method must run under external serialization. The public
// rtether.Network provides exactly that (one lock around the whole
// management/simulation plane), which is what makes the top-level API
// safe for concurrent use while this simulator stays single-threaded and
// deterministic.
type Network struct {
	cfg  Config
	eng  *sim.Engine
	ctrl *core.Controller
	sw   *Switch

	nodes   map[core.NodeID]*Node
	nodeIDs []core.NodeID // insertion order for deterministic reports

	// linkDown marks node↔switch links whose cable is "unplugged": frames
	// crossing a dead link in either direction are dropped, with RT data
	// counted as misses at the receivers that lose them.
	linkDown    map[core.NodeID]bool
	rtLinkDrops int64

	tracer  Tracer
	horizon int64

	// lastReject holds the admission controller's diagnostic for the most
	// recent rejected establishment. The wire ResponseFrame only carries an
	// accept bit (Fig. 18.4), so EstablishChannel — which serializes
	// handshakes by stepping the simulation to completion — recovers the
	// switch-side reason from here.
	lastReject error
}

// New constructs an empty network.
func New(cfg Config) *Network {
	n := &Network{
		cfg:      cfg,
		eng:      sim.NewEngine(),
		nodes:    make(map[core.NodeID]*Node),
		linkDown: make(map[core.NodeID]bool),
	}
	n.ctrl = core.NewController(core.Config{
		DPS:           cfg.DPS,
		Feasibility:   cfg.Feasibility,
		Latency:       2 * cfg.Propagation,
		VerifyWorkers: cfg.VerifyWorkers,
		FullRecheck:   cfg.FullRecheck,
	})
	n.sw = newSwitch(n)
	return n
}

// Engine exposes the event engine (for custom generators and tests).
func (n *Network) Engine() *sim.Engine { return n.eng }

// Controller exposes the switch's admission controller.
func (n *Network) Controller() *core.Controller { return n.ctrl }

// Switch exposes the switch model.
func (n *Network) Switch() *Switch { return n.sw }

// ExtraLatency returns T_latency: the constant propagation/access delay a
// frame accumulates end to end beyond its deadline budget (Eq. 18.1).
func (n *Network) ExtraLatency() int64 { return 2 * n.cfg.Propagation }

// AddNode creates an end-node with the given ID and plugs it into the
// switch. Adding a duplicate ID returns an error.
func (n *Network) AddNode(id core.NodeID) (*Node, error) {
	if _, dup := n.nodes[id]; dup {
		return nil, fmt.Errorf("netsim: node %d already exists", id)
	}
	node := newNode(n, id)
	n.nodes[id] = node
	n.nodeIDs = append(n.nodeIDs, id)
	n.sw.attachNode(node)
	return node, nil
}

// MustAddNode is AddNode for static topologies built in examples/tests.
func (n *Network) MustAddNode(id core.NodeID) *Node {
	node, err := n.AddNode(id)
	if err != nil {
		panic(err)
	}
	return node
}

// Node returns the end-node with the given ID, or nil.
func (n *Network) Node(id core.NodeID) *Node { return n.nodes[id] }

// Nodes returns all node IDs in creation order.
func (n *Network) Nodes() []core.NodeID {
	return append([]core.NodeID(nil), n.nodeIDs...)
}

// Run advances the simulation to the given absolute slot. Periodic
// sources emit traffic up to that horizon. Run may be called repeatedly
// with increasing horizons.
func (n *Network) Run(untilSlot int64) {
	if untilSlot > n.horizon {
		n.horizon = untilSlot
	}
	for _, id := range n.nodeIDs {
		n.nodes[id].armSources()
	}
	n.eng.RunUntil(n.horizon)
}

// EstablishChannel performs the full request/response handshake of
// §18.2.2 over the simulated wire and blocks (by stepping the simulation)
// until the source node receives the ResponseFrame. It returns the
// network-unique channel ID on acceptance.
//
// The handshake consumes simulated time (control frames queue behind
// other traffic), so establishment is itself part of the experiment.
func (n *Network) EstablishChannel(spec core.ChannelSpec) (core.ChannelID, error) {
	src := n.nodes[spec.Src]
	if src == nil {
		return 0, fmt.Errorf("%w: source node %d", ErrUnknownNode, spec.Src)
	}
	if n.nodes[spec.Dst] == nil {
		return 0, fmt.Errorf("%w: destination node %d", ErrUnknownNode, spec.Dst)
	}
	type outcome struct {
		id  core.ChannelID
		err error
	}
	var result *outcome
	n.lastReject = nil
	src.requestChannel(spec, func(id core.ChannelID, err error) {
		result = &outcome{id: id, err: err}
	})
	// Step the simulation until the response lands. The handshake crosses
	// four link traversals plus queueing; cap generously to detect wedges.
	deadline := n.eng.Now() + 1<<20
	for result == nil {
		if !n.eng.Step() || n.eng.Now() > deadline {
			return 0, fmt.Errorf("netsim: channel establishment did not complete (engine stalled at %d)", n.eng.Now())
		}
	}
	if result.err != nil {
		// A bare wire-level rejection with a recorded switch-side reason:
		// surface the diagnostic (it unwraps to ErrInfeasible when it is a
		// feasibility failure). Handshakes are serialized, so the recorded
		// reason belongs to this request.
		if errors.Is(result.err, core.ErrInfeasible) && n.lastReject != nil {
			return 0, n.lastReject
		}
		return 0, result.err
	}
	return result.id, nil
}

// EstablishChannels admits a whole batch of channels through the
// management plane as one admission decision
// (core.Controller.RequestAll): the batch is validated, partitioned and
// verified against a single tentative state. No wire handshake runs and
// no virtual time elapses — this is the bulk-provisioning path (scenario
// loading, offline what-if tools), not a model of the paper's
// per-channel establishment protocol. Either every channel is committed
// and registered with the switch dataplane, or none is.
func (n *Network) EstablishChannels(specs []core.ChannelSpec) ([]core.ChannelID, error) {
	for _, s := range specs {
		if err := n.checkEndpoints(s); err != nil {
			return nil, err
		}
	}
	chs, err := n.ctrl.RequestAll(specs)
	if err != nil {
		return nil, err
	}
	ids := make([]core.ChannelID, len(chs))
	for i, ch := range chs {
		n.sw.dataplane[ch.ID] = fanout(ch)
		ids[i] = ch.ID
	}
	return ids, nil
}

// checkEndpoints verifies both endpoints of a spec are attached nodes.
func (n *Network) checkEndpoints(s core.ChannelSpec) error {
	if n.nodes[s.Src] == nil {
		return fmt.Errorf("%w: source node %d", ErrUnknownNode, s.Src)
	}
	if n.nodes[s.Dst] == nil {
		return fmt.Errorf("%w: destination node %d", ErrUnknownNode, s.Dst)
	}
	return nil
}

// EstablishEachChannels admits a merged batch of channels through the
// management plane with one verdict per spec (core.Controller.RequestEach):
// unlike EstablishChannels, a rejected spec does not fail the others —
// each accepted channel is committed and registered with the switch
// dataplane, each rejected one carries its own error. The returned
// slices are parallel to specs (ids[i] is valid iff errs[i] is nil).
// Like the all-or-nothing batch path, no wire handshake runs and no
// virtual time elapses.
func (n *Network) EstablishEachChannels(specs []core.ChannelSpec) ([]core.ChannelID, []error) {
	ids := make([]core.ChannelID, len(specs))
	errs := make([]error, len(specs))
	valid := make([]int, 0, len(specs))
	routable := make([]core.ChannelSpec, 0, len(specs))
	for i, s := range specs {
		if err := n.checkEndpoints(s); err != nil {
			errs[i] = err
			continue
		}
		valid = append(valid, i)
		routable = append(routable, s)
	}
	chs, cerrs := n.ctrl.RequestEach(routable)
	for vi, i := range valid {
		if cerrs[vi] != nil {
			errs[i] = cerrs[vi]
			continue
		}
		ch := chs[vi]
		n.sw.dataplane[ch.ID] = fanout(ch)
		ids[i] = ch.ID
	}
	return ids, errs
}

// EstablishEachReqChannels is EstablishEachChannels over a mixed
// unicast/multicast batch (core.Controller.RequestEachReq): each Req
// with a nil sink set is a unicast channel, the rest are multicast
// trees, and every request is accepted or rejected on its own inside
// one merged kernel pass. The returned slices are parallel to reqs.
func (n *Network) EstablishEachReqChannels(reqs []core.Req) ([]core.ChannelID, []error) {
	ids := make([]core.ChannelID, len(reqs))
	errs := make([]error, len(reqs))
	valid := make([]int, 0, len(reqs))
	routable := make([]core.Req, 0, len(reqs))
	for i, r := range reqs {
		err := n.checkEndpoints(r.Spec)
		if err == nil {
			for _, s := range r.Sinks {
				if n.nodes[s] == nil {
					err = fmt.Errorf("%w: sink node %d", ErrUnknownNode, s)
					break
				}
			}
		}
		if err != nil {
			errs[i] = err
			continue
		}
		valid = append(valid, i)
		routable = append(routable, r)
	}
	chs, cerrs := n.ctrl.RequestEachReq(routable)
	for vi, i := range valid {
		if cerrs[vi] != nil {
			errs[i] = cerrs[vi]
			continue
		}
		ch := chs[vi]
		n.sw.dataplane[ch.ID] = fanout(ch)
		ids[i] = ch.ID
	}
	return ids, errs
}

// EstablishMulticastChannel admits a one-to-many channel through the
// management plane as one atomic admission decision
// (core.Controller.RequestMulticast): the source uplink plus every sink
// downlink is verified against a single tentative state, and any
// rejection rolls the whole tree back. On acceptance the switch
// dataplane fans the channel's frames out to every sink. Like the batch
// paths, no wire handshake runs and no virtual time elapses.
func (n *Network) EstablishMulticastChannel(spec core.MulticastSpec) (core.ChannelID, error) {
	if n.nodes[spec.Src] == nil {
		return 0, fmt.Errorf("%w: source node %d", ErrUnknownNode, spec.Src)
	}
	for _, s := range spec.Sinks {
		if n.nodes[s] == nil {
			return 0, fmt.Errorf("%w: sink node %d", ErrUnknownNode, s)
		}
	}
	ch, err := n.ctrl.RequestMulticast(spec)
	if err != nil {
		return 0, err
	}
	n.sw.dataplane[ch.ID] = fanout(ch)
	return ch.ID, nil
}

// SetLinkUp marks the full-duplex link between a node and the switch as
// up or down. While down, frames crossing the link in either direction —
// including frames already queued on a transmitter — are dropped; RT
// data losses are counted as misses on the receiving side's channel
// metrics (the star analogue of a fabric trunk failure). Reservations
// are untouched: a star has no alternate path, so re-routing is the
// fabric's job and the star's failure story is honest loss accounting.
func (n *Network) SetLinkUp(id core.NodeID, up bool) error {
	if n.nodes[id] == nil {
		return fmt.Errorf("%w: node %d", ErrUnknownNode, id)
	}
	if up {
		delete(n.linkDown, id)
	} else {
		n.linkDown[id] = true
	}
	return nil
}

// LinkUp reports whether a node's link to the switch is up. Unknown
// nodes report false.
func (n *Network) LinkUp(id core.NodeID) bool {
	return n.nodes[id] != nil && !n.linkDown[id]
}

// RTLinkDrops returns the cumulative count of RT data frames dropped on
// dead links (each was also counted as a miss at its receiver).
func (n *Network) RTLinkDrops() int64 { return n.rtLinkDrops }

// StopTraffic detaches the periodic source of a channel without releasing
// the reservation (the inverse of Node.StartTraffic).
func (n *Network) StopTraffic(id core.ChannelID) error {
	ch := n.ctrl.State().Get(id)
	if ch == nil {
		return fmt.Errorf("netsim: unknown channel %d", id)
	}
	node := n.nodes[ch.Spec.Src]
	if node == nil || node.sources[id] == nil {
		return fmt.Errorf("netsim: channel %d has no active source", id)
	}
	node.stopSource(id)
	return nil
}

// ChannelMetrics returns the receiver-side measurements of one channel,
// or nil when it has not delivered any traffic yet. With a single
// receiver (unicast) the returned struct is live — it keeps
// accumulating as the simulation advances. A multicast channel's
// metrics aggregate every sink's deliveries (counters summed, delay
// distributions merged) into a fresh snapshot.
func (n *Network) ChannelMetrics(id core.ChannelID) *ChannelMetrics {
	var found []*ChannelMetrics
	for _, nid := range n.nodeIDs {
		if m := n.nodes[nid].rxChannels[id]; m != nil {
			found = append(found, m)
		}
	}
	switch len(found) {
	case 0:
		return nil
	case 1:
		return found[0]
	}
	agg := newChannelMetrics()
	for _, m := range found {
		agg.Delivered += m.Delivered
		agg.Misses += m.Misses
		agg.Delays.Merge(m.Delays)
	}
	return agg
}

// ForceChannel installs a channel in both the admission state and the
// switch dataplane without any feasibility test or handshake. Experiments
// use it to simulate deliberately over-admitted systems; see
// core.Controller.ForceAdd.
func (n *Network) ForceChannel(spec core.ChannelSpec, part core.Partition) (core.ChannelID, error) {
	if n.nodes[spec.Src] == nil || n.nodes[spec.Dst] == nil {
		return 0, fmt.Errorf("netsim: unknown endpoint in %v", spec)
	}
	ch, err := n.ctrl.ForceAdd(spec, part)
	if err != nil {
		return 0, err
	}
	n.sw.dataplane[ch.ID] = fanout(ch)
	return ch.ID, nil
}

// ReleaseChannel tears down an established channel and stops its traffic
// source if one is attached.
func (n *Network) ReleaseChannel(id core.ChannelID) error {
	ch := n.ctrl.State().Get(id)
	if ch == nil {
		return fmt.Errorf("netsim: unknown channel %d", id)
	}
	if node := n.nodes[ch.Spec.Src]; node != nil {
		node.stopSource(id)
	}
	n.sw.forget(id)
	return n.ctrl.Release(id)
}
