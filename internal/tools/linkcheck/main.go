// Command linkcheck validates the repository-local links in markdown
// files: every inline link or image target that is not an external URL
// or an in-page anchor must resolve to an existing file or directory,
// relative to the markdown file that references it. It keeps README.md
// and docs/ honest — a renamed file can no longer leave dangling
// references behind.
//
//	go run ./internal/tools/linkcheck README.md docs
//
// Arguments are markdown files or directories (scanned recursively for
// *.md). Exit status is non-zero when any target is missing; each
// finding is printed as file:line: message.
package main

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links and images: [text](target) and
// ![alt](target), with an optional "title" suffix inside the parens.
var linkRE = regexp.MustCompile(`!?\[[^\]]*\]\(([^)\s]+)(?:\s+"[^"]*")?\)`)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck <file-or-dir> ...")
		os.Exit(2)
	}
	var files []string
	for _, arg := range os.Args[1:] {
		info, err := os.Stat(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		if !info.IsDir() {
			files = append(files, arg)
			continue
		}
		err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
			if err == nil && !d.IsDir() && strings.HasSuffix(path, ".md") {
				files = append(files, path)
			}
			return err
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
	}
	broken := 0
	for _, f := range files {
		n, err := checkFile(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "linkcheck: %v\n", err)
			os.Exit(2)
		}
		broken += n
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken links\n", broken)
		os.Exit(1)
	}
}

// checkFile scans one markdown file and reports local link targets that
// do not exist on disk.
func checkFile(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	broken := 0
	sc := bufio.NewScanner(f)
	inFence := false
	for lineNo := 1; sc.Scan(); lineNo++ {
		line := sc.Text()
		// Skip fenced code blocks: their bracketed text is code, not links.
		if strings.HasPrefix(strings.TrimSpace(line), "```") {
			inFence = !inFence
			continue
		}
		if inFence {
			continue
		}
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if skippable(target) {
				continue
			}
			// Drop an in-file fragment: docs/x.md#section checks docs/x.md.
			if i := strings.IndexByte(target, '#'); i >= 0 {
				target = target[:i]
			}
			if target == "" {
				continue
			}
			resolved := filepath.Join(filepath.Dir(path), filepath.FromSlash(target))
			if _, err := os.Stat(resolved); err != nil {
				fmt.Printf("%s:%d: broken link %q (%s)\n", path, lineNo, m[1], resolved)
				broken++
			}
		}
	}
	return broken, sc.Err()
}

// skippable reports whether a link target is out of scope: external
// URLs, mail addresses and pure in-page anchors.
func skippable(target string) bool {
	return strings.Contains(target, "://") ||
		strings.HasPrefix(target, "mailto:") ||
		strings.HasPrefix(target, "#")
}
