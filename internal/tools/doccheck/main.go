// Command doccheck enforces godoc coverage: every exported top-level
// identifier (and every exported method on an exported receiver) in the
// given package directories must carry a doc comment. It is the
// revive/golint-style documentation gate of CI — go vet checks comment
// placement, doccheck checks presence.
//
//	go run ./internal/tools/doccheck ./rtether ./internal/admit
//
// Exit status is non-zero when any identifier is undocumented; each
// finding is printed as file:line: message.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> ...")
		os.Exit(2)
	}
	findings := 0
	for _, dir := range os.Args[1:] {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "doccheck: %v\n", err)
			os.Exit(2)
		}
		findings += n
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifiers\n", findings)
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file of one package directory and
// reports undocumented exported declarations.
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	findings := 0
	report := func(pos token.Pos, format string, args ...any) {
		p := fset.Position(pos)
		fmt.Printf("%s:%d: %s\n", filepath.ToSlash(p.Filename), p.Line, fmt.Sprintf(format, args...))
		findings++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					checkFunc(d, report)
				case *ast.GenDecl:
					checkGen(d, report)
				}
			}
		}
	}
	return findings, nil
}

// checkFunc flags exported functions, and exported methods whose
// receiver type is itself exported, that carry no doc comment.
func checkFunc(d *ast.FuncDecl, report func(token.Pos, string, ...any)) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	name := d.Name.Name
	if d.Recv != nil && len(d.Recv.List) == 1 {
		recv := receiverName(d.Recv.List[0].Type)
		if recv != "" && !ast.IsExported(recv) {
			return // method on an unexported type: internal detail
		}
		name = recv + "." + name
	}
	report(d.Pos(), "exported %s is undocumented", name)
}

// checkGen flags exported type, const and var specs documented neither
// on the spec nor on the enclosing declaration group.
func checkGen(d *ast.GenDecl, report func(token.Pos, string, ...any)) {
	for _, spec := range d.Specs {
		switch sp := spec.(type) {
		case *ast.TypeSpec:
			if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil {
				report(sp.Pos(), "exported type %s is undocumented", sp.Name.Name)
			}
		case *ast.ValueSpec:
			// A documented group (e.g. a const block with one header
			// comment) covers all its members, matching godoc rendering.
			if d.Doc != nil || sp.Doc != nil || sp.Comment != nil {
				continue
			}
			for _, name := range sp.Names {
				if name.IsExported() {
					report(name.Pos(), "exported %s %s is undocumented", d.Tok, name.Name)
				}
			}
		}
	}
}

// receiverName unwraps a method receiver type expression to its base
// type name.
func receiverName(expr ast.Expr) string {
	for {
		switch t := expr.(type) {
		case *ast.StarExpr:
			expr = t.X
		case *ast.IndexExpr: // generic receiver T[K]
			expr = t.X
		case *ast.IndexListExpr: // generic receiver T[K, V]
			expr = t.X
		case *ast.Ident:
			return t.Name
		default:
			return ""
		}
	}
}
