package sweep

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/scenario"
	"repro/rtether"
)

// Options configures a sweep execution.
type Options struct {
	// Dir is the directory scenario paths resolve against — usually the
	// grid file's directory, so grids can ship next to their scenarios.
	Dir string
	// Progress receives one line per completed cell (nil = silent).
	Progress io.Writer
}

// Run executes every cell of the grid and merges the results into one
// BENCH document: one benchmark entry per cell, named
// "BenchmarkSweep/<grid>/<axis=value>/...", carrying the cell's verdict
// counts, admission-kernel counters and (daemon mode, or timing: true)
// latency metrics. Cells execute in canonical order, fanned out across
// min(parallel, cells) goroutines; the merged document's entry order is
// the cell order regardless of completion order, and Sort makes it a
// pure function of the grid, so an in-process sweep without timing is
// byte-identical run over run. The first cell failure aborts the sweep.
func (g *Grid) Run(ctx context.Context, opts Options) (*benchfmt.Report, error) {
	cells := g.Cells()
	parallel := g.Parallel
	if parallel < 1 {
		parallel = 1
	}
	if parallel > len(cells) {
		parallel = len(cells)
	}

	type outcome struct {
		res benchfmt.Result
		err error
	}
	results := make([]outcome, len(cells))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallel)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var progressMu sync.Mutex
	done := 0
	for i := range cells {
		if cctx.Err() != nil {
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			res, err := g.runCell(cctx, &cells[i], opts)
			results[i] = outcome{res: res, err: err}
			if err != nil {
				cancel() // abort the remaining cells
				return
			}
			if opts.Progress != nil {
				progressMu.Lock()
				done++
				fmt.Fprintf(opts.Progress, "sweep: [%d/%d] %s: %d ops\n", done, len(cells), cellTitle(g, &cells[i]), res.Runs)
				progressMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	rep := &benchfmt.Report{Pkg: "repro/internal/sweep"}
	for i := range results {
		if err := results[i].err; err != nil {
			return nil, fmt.Errorf("sweep: cell %s: %w", cellTitle(g, &cells[i]), err)
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		rep.Benchmarks = append(rep.Benchmarks, results[i].res)
	}
	rep.Sort()
	return rep, nil
}

// cellTitle is the cell's full benchmark name.
func cellTitle(g *Grid, c *Cell) string {
	name := "BenchmarkSweep/" + sanitizeName(g.Name)
	if cn := c.Name(); cn != "" {
		name += "/" + cn
	}
	return name
}

// sanitizeName makes a grid name benchmark-name-safe (no spaces — the
// bench text format is whitespace-delimited).
func sanitizeName(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch r {
		case ' ', '\t', '\n':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// runCell derives the cell's scenario and dispatches on the grid mode.
func (g *Grid) runCell(ctx context.Context, c *Cell, opts Options) (benchfmt.Result, error) {
	s, err := g.cellScenario(c, opts)
	if err != nil {
		return benchfmt.Result{}, err
	}
	switch {
	case g.Mode == ModeDaemon:
		return g.runDaemonCell(ctx, c, s)
	case g.Simulate:
		return g.runSimulateCell(c, s)
	default:
		return g.runReplayCell(c, s)
	}
}

// cellScenario loads the cell's base scenario and applies its axis
// overrides to an isolated clone.
func (g *Grid) cellScenario(c *Cell, opts Options) (*scenario.Scenario, error) {
	path := g.Scenario
	if c.Scenario != "" {
		path = c.Scenario
	}
	if !filepath.IsAbs(path) {
		path = filepath.Join(opts.Dir, path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	s, err := scenario.Load(f)
	f.Close()
	if err != nil {
		return nil, err
	}
	s = s.Clone()
	if c.Scheme != "" {
		s.DPS = c.Scheme
	}
	if c.FailurePolicy != "" {
		s.FailurePolicy = c.FailurePolicy
	}
	if g.Seed != 0 {
		s.Seed = g.Seed
	}
	if c.ChurnRate > 0 {
		if len(s.Churn) == 0 {
			return nil, &AxisError{Axis: AxisChurnRate, Msg: fmt.Sprintf("scenario %q declares no churn generators to scale", path)}
		}
		for i := range s.Churn {
			s.Churn[i].Rate = c.ChurnRate
		}
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// runReplayCell replays the cell's flattened workload against the
// admission plane in-process: the same establish/release stream daemon
// mode sends over the wire, submitted sequentially or in merged
// EstablishEach groups per the batch axis.
func (g *Grid) runReplayCell(c *Cell, s *scenario.Scenario) (benchfmt.Result, error) {
	items, _, err := s.Workload()
	if err != nil {
		return benchfmt.Result{}, err
	}
	if g.MaxOps > 0 && len(items) > g.MaxOps {
		items = items[:g.MaxOps]
	}
	network, err := s.BuildNetwork(c.Workers)
	if err != nil {
		return benchfmt.Result{}, err
	}
	defer network.Close()

	m := cellCounts{}
	start := time.Now()
	if c.Batch == "each" {
		err = replayEach(network, items, &m)
	} else {
		err = replaySequential(network, items, &m)
	}
	wall := time.Since(start)
	if err != nil {
		return benchfmt.Result{}, err
	}

	stats := network.AdmissionStats()
	res := benchfmt.Result{
		Name: cellTitle(g, c),
		Runs: int64(m.ops),
		Metrics: map[string]float64{
			"accepted":      float64(m.accepted),
			"rejected":      float64(m.rejected),
			"released":      float64(m.released),
			"skipped":       float64(m.skipped),
			"repartitions":  float64(stats.Repartitions),
			"links-checked": float64(stats.LinksChecked),
		},
	}
	if g.Timing {
		addTiming(res.Metrics, wall, m.ops)
	}
	return res, nil
}

// cellCounts aggregates one cell's replay outcomes.
type cellCounts struct {
	ops      int // operations attempted (establishes + releases)
	accepted int // establishes admitted
	rejected int // tolerated admission rejections
	released int // releases applied
	skipped  int // releases of never-established channels
}

// establishItem submits one establish WorkItem through the management
// plane and records the outcome. Mandatory rejections are fatal,
// matching scenario replay semantics.
func establishItem(network *rtether.Network, it scenario.WorkItem, handles map[string]*rtether.Channel, m *cellCounts) error {
	m.ops++
	var h *rtether.Channel
	var err error
	if len(it.Sinks) > 0 {
		h, err = network.EstablishMulticast(rtether.MulticastSpec{
			Src: it.Spec.Src, Sinks: it.Sinks, C: it.Spec.C, P: it.Spec.P, D: it.Spec.D, Priority: it.Spec.Priority,
		})
	} else {
		var hs []*rtether.Channel
		hs, err = network.EstablishAll([]rtether.ChannelSpec{it.Spec})
		if err == nil {
			h = hs[0]
		}
	}
	if err != nil {
		if !it.Optional {
			return fmt.Errorf("channel %q rejected: %w", it.Name, err)
		}
		m.rejected++
		return nil
	}
	m.accepted++
	if it.Name != "" {
		handles[it.Name] = h
	}
	return nil
}

// releaseItem applies one release WorkItem.
func releaseItem(it scenario.WorkItem, handles map[string]*rtether.Channel, m *cellCounts) error {
	m.ops++
	h := handles[it.Name]
	if h == nil {
		m.skipped++ // its establish was rejected
		return nil
	}
	delete(handles, it.Name)
	if err := h.Release(); err != nil {
		return fmt.Errorf("release %q: %w", it.Name, err)
	}
	m.released++
	return nil
}

// replaySequential submits every item as its own admission decision.
func replaySequential(network *rtether.Network, items []scenario.WorkItem, m *cellCounts) error {
	handles := make(map[string]*rtether.Channel)
	for _, it := range items {
		var err error
		if it.Release {
			err = releaseItem(it, handles, m)
		} else {
			err = establishItem(network, it, handles, m)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// maxEachGroup caps how many consecutive establishes merge into one
// EstablishEach pass — the in-process analogue of the daemon
// coalescer's MaxBatch.
const maxEachGroup = 512

// replayEach groups consecutive unicast establishes into merged
// EstablishEach admission passes (releases and multicast trees flush
// the pending group first, preserving each channel's establish→release
// order).
func replayEach(network *rtether.Network, items []scenario.WorkItem, m *cellCounts) error {
	handles := make(map[string]*rtether.Channel)
	var group []scenario.WorkItem
	flush := func() error {
		if len(group) == 0 {
			return nil
		}
		specs := make([]rtether.ChannelSpec, len(group))
		for i, it := range group {
			specs[i] = it.Spec
		}
		chs, errs := network.EstablishEach(specs)
		for i, it := range group {
			m.ops++
			if errs[i] != nil {
				if !it.Optional {
					return fmt.Errorf("channel %q rejected: %w", it.Name, errs[i])
				}
				m.rejected++
				continue
			}
			m.accepted++
			if it.Name != "" {
				handles[it.Name] = chs[i]
			}
		}
		group = group[:0]
		return nil
	}
	for _, it := range items {
		switch {
		case it.Release:
			if err := flush(); err != nil {
				return err
			}
			if err := releaseItem(it, handles, m); err != nil {
				return err
			}
		case len(it.Sinks) > 0:
			if err := flush(); err != nil {
				return err
			}
			if err := establishItem(network, it, handles, m); err != nil {
				return err
			}
		default:
			group = append(group, it)
			if len(group) >= maxEachGroup {
				if err := flush(); err != nil {
					return err
				}
			}
		}
	}
	return flush()
}

// runSimulateCell plays the cell's full scenario simulation — virtual
// time, traffic sources, background load — and reports the delivery and
// miss profile alongside the admission counts.
func (g *Grid) runSimulateCell(c *Cell, s *scenario.Scenario) (benchfmt.Result, error) {
	start := time.Now()
	res, err := s.Run()
	wall := time.Since(start)
	if err != nil {
		return benchfmt.Result{}, err
	}
	defer res.Network.Close()

	evAccepted, evRejected, evSkipped := res.EventCounts()
	var delivered, misses int64
	for _, ch := range res.Report.Channels {
		delivered += ch.Delivered
		misses += ch.Misses
	}
	ops := len(res.Accepted) + res.Rejected + len(res.Events)
	stats := res.Network.AdmissionStats()
	out := benchfmt.Result{
		Name: cellTitle(g, c),
		Runs: int64(ops),
		Metrics: map[string]float64{
			"accepted":        float64(len(res.Accepted) + evAccepted),
			"rejected":        float64(res.Rejected + evRejected),
			"skipped":         float64(evSkipped),
			"repartitions":    float64(stats.Repartitions),
			"rt-delivered":    float64(delivered),
			"rt-misses":       float64(misses),
			"bg-sent":         float64(res.BgSent),
			"nonrt-delivered": float64(res.Report.NonRTDelivered),
			"nonrt-drops":     float64(res.Report.NonRTDrops),
		},
	}
	if g.Timing {
		addTiming(out.Metrics, wall, ops)
	}
	return out, nil
}

// addTiming folds wall-clock metrics into a cell entry.
func addTiming(m map[string]float64, wall time.Duration, ops int) {
	m["wall-ns"] = float64(wall.Nanoseconds())
	if ops > 0 {
		m["ns/op"] = float64(wall.Nanoseconds()) / float64(ops)
	}
}
