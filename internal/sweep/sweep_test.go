package sweep

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// loadTestGrid builds a grid from an inline document.
func loadTestGrid(t *testing.T, doc string) *Grid {
	t.Helper()
	g, err := LoadGrid(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// runTestGrid executes a grid against the testdata scenarios and
// returns the merged document's canonical JSON.
func runTestGrid(t *testing.T, g *Grid) []byte {
	t.Helper()
	rep, err := g.Run(context.Background(), Options{Dir: "testdata"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSweepDeterministic pins the platform's core reproducibility
// contract: the same grid and seed produce a byte-identical merged
// BENCH document, run over run, even with cells executing in parallel.
func TestSweepDeterministic(t *testing.T) {
	const doc = `{
		"name": "det",
		"scenario": "star.json",
		"seed": 9,
		"parallel": 2,
		"axes": {
			"scheme": ["sdps", "adps"],
			"churnRate": [0.2, 0.4]
		}
	}`
	a := runTestGrid(t, loadTestGrid(t, doc))
	b := runTestGrid(t, loadTestGrid(t, doc))
	if !bytes.Equal(a, b) {
		t.Fatalf("same grid+seed produced different BENCH documents:\n--- a\n%s\n--- b\n%s", a, b)
	}
	for _, cell := range []string{
		"BenchmarkSweep/det/scheme=sdps/churnRate=0.2",
		"BenchmarkSweep/det/scheme=adps/churnRate=0.4",
	} {
		if !bytes.Contains(a, []byte(cell)) {
			t.Errorf("merged document missing cell %q:\n%s", cell, a)
		}
	}
	if bytes.Contains(a, []byte(`"ns/op"`)) {
		t.Error("timing metrics present without timing: true (breaks byte-identity)")
	}
}

// TestSweepSchemeAxisChangesOutcomes sanity-checks that the axis
// actually reaches the kernel: sdps and adps cells must report
// different admission outcomes under churn pressure.
func TestSweepSchemeAxisChangesOutcomes(t *testing.T) {
	const doc = `{
		"name": "scheme",
		"scenario": "star.json",
		"seed": 9,
		"axes": {"scheme": ["sdps", "adps"], "churnRate": [3.0]}
	}`
	rep, err := loadTestGrid(t, doc).Run(context.Background(), Options{Dir: "testdata"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Benchmarks))
	}
	s, a := rep.Benchmarks[0].Metrics, rep.Benchmarks[1].Metrics
	if s["accepted"]+s["rejected"] == 0 || a["accepted"]+a["rejected"] == 0 {
		t.Fatalf("cells saw no admission decisions: sdps=%v adps=%v", s, a)
	}
	// SDPS's fixed splits force more per-link feasibility work than
	// ADPS's adaptive ones at the same load — identical counters would
	// mean the axis never reached the kernel.
	if s["accepted"] == a["accepted"] && s["rejected"] == a["rejected"] && s["links-checked"] == a["links-checked"] {
		t.Errorf("scheme axis had no effect: sdps=%v adps=%v", s, a)
	}
}

// TestSweepBatchAxis runs the replay executor both ways. Batching is a
// submission-path choice, not a policy one, so both cells must see the
// same workload and produce decisions.
func TestSweepBatchAxis(t *testing.T) {
	const doc = `{
		"name": "batch",
		"scenario": "star.json",
		"seed": 9,
		"axes": {"batch": ["sequential", "each"]}
	}`
	rep, err := loadTestGrid(t, doc).Run(context.Background(), Options{Dir: "testdata"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Benchmarks))
	}
	seq, each := rep.Benchmarks[0], rep.Benchmarks[1]
	if seq.Runs != each.Runs {
		t.Errorf("batching changed the op count: sequential=%d each=%d", seq.Runs, each.Runs)
	}
	if seq.Metrics["accepted"] == 0 || each.Metrics["accepted"] == 0 {
		t.Errorf("no acceptances: sequential=%v each=%v", seq.Metrics, each.Metrics)
	}
}

// TestSweepSimulate runs a full-simulation cell and checks the
// delivery profile reaches the merged document.
func TestSweepSimulate(t *testing.T) {
	const doc = `{
		"name": "sim",
		"scenario": "star.json",
		"simulate": true,
		"seed": 9,
		"axes": {"failurePolicy": ["reject", "preempt"]}
	}`
	rep, err := loadTestGrid(t, doc).Run(context.Background(), Options{Dir: "testdata"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Benchmarks))
	}
	for _, b := range rep.Benchmarks {
		if b.Metrics["rt-delivered"] <= 0 {
			t.Errorf("%s: no RT frames delivered: %v", b.Name, b.Metrics)
		}
		if _, ok := b.Metrics["rt-misses"]; !ok {
			t.Errorf("%s: miss profile missing: %v", b.Name, b.Metrics)
		}
	}
}

// TestSweepWorkersAxisInvariantDecisions pins the verification-pool
// contract end to end: worker count never changes admission decisions,
// only (untimed here) execution parallelism.
func TestSweepWorkersAxisInvariantDecisions(t *testing.T) {
	const doc = `{
		"name": "workers",
		"scenario": "star.json",
		"seed": 9,
		"axes": {"workers": [1, 4]}
	}`
	rep, err := loadTestGrid(t, doc).Run(context.Background(), Options{Dir: "testdata"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Benchmarks))
	}
	w1, w4 := rep.Benchmarks[0].Metrics, rep.Benchmarks[1].Metrics
	if w1["accepted"] != w4["accepted"] || w1["rejected"] != w4["rejected"] {
		t.Errorf("worker count changed decisions: 1=%v 4=%v", w1, w4)
	}
}

// TestSweepChurnRateAxisNeedsChurn: scaling churn on a scenario with no
// generators is a declared error naming the axis, not a silent no-op.
func TestSweepChurnRateAxisNeedsChurn(t *testing.T) {
	const doc = `{
		"name": "bad",
		"scenario": "nochurn.json",
		"axes": {"churnRate": [0.5]}
	}`
	_, err := loadTestGrid(t, doc).Run(context.Background(), Options{Dir: "testdata"})
	if err == nil {
		t.Fatal("churnRate axis accepted on a churn-free scenario")
	}
	if !strings.Contains(err.Error(), AxisChurnRate) || !strings.Contains(err.Error(), "no churn generators") {
		t.Errorf("error does not explain the axis problem: %v", err)
	}
}

// TestSweepDaemon2x2 is the full daemon-mode path: a scheme × transport
// product where every cell boots its own in-process daemon (HTTP plus a
// binary listener for the transport=binary column), replays the
// workload from concurrent wire clients, and reports latency metrics.
func TestSweepDaemon2x2(t *testing.T) {
	const doc = `{
		"name": "wire",
		"scenario": "star.json",
		"mode": "daemon",
		"seed": 9,
		"clients": 4,
		"maxOps": 150,
		"parallel": 2,
		"axes": {
			"scheme": ["sdps", "adps"],
			"transport": ["json", "binary"]
		}
	}`
	rep, err := loadTestGrid(t, doc).Run(context.Background(), Options{Dir: "testdata"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 4 {
		t.Fatalf("got %d cells, want 4", len(rep.Benchmarks))
	}
	for _, b := range rep.Benchmarks {
		if b.Runs == 0 {
			t.Errorf("%s: no operations timed", b.Name)
		}
		if b.Metrics["ns/op"] <= 0 {
			t.Errorf("%s: no establish latency: %v", b.Name, b.Metrics)
		}
		if b.Metrics["accepted"] == 0 {
			t.Errorf("%s: daemon accepted nothing: %v", b.Name, b.Metrics)
		}
		if b.Metrics["est-p99-ns"] < b.Metrics["est-p50-ns"] {
			t.Errorf("%s: percentile order broken: %v", b.Name, b.Metrics)
		}
		// The /metrics scrape taken around the replay must land
		// server-side counters in the merged document.
		for _, key := range []string{"srv-links-checked", "srv-cache-hit-rate", "srv-flights", "srv-coalesce-merges"} {
			if _, ok := b.Metrics[key]; !ok {
				t.Errorf("%s: scraped metric %q missing: %v", b.Name, key, b.Metrics)
			}
		}
		if b.Metrics["srv-flights"] == 0 {
			t.Errorf("%s: scrape recorded no flights: %v", b.Name, b.Metrics)
		}
	}
	// Both transports must appear — the axis is the point of the grid.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"transport=json", "transport=binary", "scheme=sdps", "scheme=adps"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("merged document missing %q", want)
		}
	}
}
