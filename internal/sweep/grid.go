// Package sweep turns cmd/rtexp into an experiment platform: one JSON
// document declares a parameter grid over the admission kernel's
// degrees of freedom — partitioning scheme, scenario file, churn rate,
// verification workers, establishment batching, wire transport, failure
// policy — and the orchestrator expands it into the cartesian product
// of runs, executes every cell (in-process against the scenario
// machinery, or against rtetherd daemons it boots and drains itself)
// and merges the results into a single BENCH document
// (internal/benchfmt) keyed by axis=value labels. A stored document
// from a previous run becomes the baseline of a whole-trajectory
// regression gate: every cell is compared by name and any slowdown
// beyond a threshold fails the process.
package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Axis names, in canonical expansion order. Cells enumerate the product
// in this order regardless of how the JSON document orders its axes
// map, so the same grid always yields the same cell sequence.
const (
	// AxisScheme varies the deadline-partitioning scheme: "sdps" or
	// "adps" (mapped to H-SDPS/H-ADPS on fabrics, like the scenario
	// field it overrides).
	AxisScheme = "scheme"
	// AxisScenario varies the base scenario document itself — the
	// topology axis of a sweep. Paths resolve relative to the grid file.
	AxisScenario = "scenario"
	// AxisChurnRate scales the workload: the value replaces the Rate of
	// every churn generator in the scenario (which must declare at least
	// one).
	AxisChurnRate = "churnRate"
	// AxisWorkers varies the admission verification pool size
	// (0 = GOMAXPROCS). Decisions are identical at every setting; the
	// axis measures the sweep's parallel speedup.
	AxisWorkers = "workers"
	// AxisBatch varies how in-process replay submits establishes:
	// "sequential" (one management-plane decision each) or "each"
	// (consecutive establishes merged into EstablishEach groups, the
	// coalesced path). Replay mode only.
	AxisBatch = "batch"
	// AxisTransport varies the client transport of daemon mode: "json"
	// (HTTP) or "binary" (the length-prefixed framing).
	AxisTransport = "transport"
	// AxisFailurePolicy varies the degradation ladder applied to
	// channels displaced by failure events: "reject", "degrade" or
	// "preempt".
	AxisFailurePolicy = "failurePolicy"
)

// axisOrder fixes the canonical axis expansion order.
var axisOrder = []string{
	AxisScheme, AxisScenario, AxisChurnRate, AxisWorkers,
	AxisBatch, AxisTransport, AxisFailurePolicy,
}

// Grid modes.
const (
	// ModeInProcess executes every cell inside the orchestrator process
	// against the scenario machinery: an admission-plane workload replay
	// by default, a full simulation with simulate: true. Deterministic —
	// with timing off, the merged document is byte-identical run over
	// run.
	ModeInProcess = "inprocess"
	// ModeDaemon boots one rtetherd-equivalent daemon per cell (an
	// internal/server instance on an ephemeral localhost port, plus a
	// binary listener when the transport axis asks for it), replays the
	// workload over the wire from concurrent clients (internal/loadgen),
	// then drains and tears the daemon down. parallel > 1 fans cells out
	// across daemons running side by side.
	ModeDaemon = "daemon"
)

// AxisError reports an invalid axis declaration, naming the offending
// axis — the typed error the grid loader's fuzz contract pins.
type AxisError struct {
	Axis string // the axis at fault
	Msg  string // what is wrong with it
}

// Error renders the diagnostic.
func (e *AxisError) Error() string { return fmt.Sprintf("sweep: axis %q: %s", e.Axis, e.Msg) }

// Grid is the declarative sweep document.
type Grid struct {
	// Name titles the sweep; it prefixes every cell's benchmark name.
	Name string `json:"name"`
	// Scenario is the base scenario document every cell derives from
	// (resolved relative to the grid file). Omit it only when a
	// "scenario" axis supplies one per cell.
	Scenario string `json:"scenario,omitempty"`
	// Mode picks the executor: "inprocess" (default) or "daemon".
	Mode string `json:"mode,omitempty"`
	// Simulate switches in-process cells from an admission-plane
	// workload replay to the full simulation (scenario Run): virtual
	// time passes, traffic flows, and cells report delivery/miss
	// profiles. In-process mode only.
	Simulate bool `json:"simulate,omitempty"`
	// Timing adds wall-clock metrics (ns/op, wall-ns) to in-process
	// cells. Off by default so in-process sweeps stay byte-identical run
	// over run; daemon cells always carry latency metrics — measuring
	// them is the point of booting a daemon.
	Timing bool `json:"timing,omitempty"`
	// Seed overrides the base scenario's seed when non-zero, so one grid
	// document fully determines the synthesized workloads.
	Seed int64 `json:"seed,omitempty"`
	// Clients sizes daemon mode's concurrent client pool (default 8).
	Clients int `json:"clients,omitempty"`
	// MaxOps caps each cell's workload items (0 = whole workload).
	MaxOps int `json:"maxOps,omitempty"`
	// Parallel bounds how many cells execute concurrently (default 1 —
	// sequential; raise it in daemon mode to fan out across daemons).
	Parallel int `json:"parallel,omitempty"`
	// Axes declares the grid dimensions: axis name → value list. Every
	// combination of values (one per axis) becomes one cell.
	Axes map[string][]json.RawMessage `json:"axes"`

	// axes holds the validated axes in canonical order.
	axes []axis
}

// axis is one validated grid dimension: canonical string labels plus
// the typed values expansion assigns to cells.
type axis struct {
	name   string
	labels []string // canonical per-value labels, e.g. "0.5", "adps"
	values []any    // typed: string, float64 or int, matching the axis
}

// LoadGrid parses and validates a grid document. Any malformed input
// returns an error — *AxisError for per-axis problems (unknown axis
// name, empty range, invalid or duplicate value), a plain error for
// document-level ones. It never panics, whatever the input (pinned by
// FuzzLoadGrid).
func LoadGrid(r io.Reader) (*Grid, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		return nil, fmt.Errorf("sweep: parse: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// LoadGridFile is LoadGrid over a file.
func LoadGridFile(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := LoadGrid(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// Validate checks the document: mode, axis names, every axis range and
// the cross-field constraints (transport needs daemon mode, batch and
// workers need the replay executor, a scenario must come from
// somewhere).
func (g *Grid) Validate() error {
	if g.Name == "" {
		return fmt.Errorf("sweep: grid needs a name")
	}
	switch g.Mode {
	case "", ModeInProcess, ModeDaemon:
	default:
		return fmt.Errorf("sweep: unknown mode %q (want %q or %q)", g.Mode, ModeInProcess, ModeDaemon)
	}
	if g.Simulate && g.Mode == ModeDaemon {
		return fmt.Errorf("sweep: simulate is an in-process option (daemon cells always run the live network)")
	}
	if g.Clients < 0 {
		return fmt.Errorf("sweep: negative clients")
	}
	if g.MaxOps < 0 {
		return fmt.Errorf("sweep: negative maxOps")
	}
	if g.Parallel < 0 {
		return fmt.Errorf("sweep: negative parallel")
	}

	known := make(map[string]bool, len(axisOrder))
	for _, name := range axisOrder {
		known[name] = true
	}
	for name := range g.Axes {
		if !known[name] {
			return &AxisError{Axis: name, Msg: fmt.Sprintf("unknown axis (known: %s)", strings.Join(axisOrder, ", "))}
		}
	}
	g.axes = g.axes[:0]
	for _, name := range axisOrder {
		raws, ok := g.Axes[name]
		if !ok {
			continue
		}
		ax := axis{name: name}
		if len(raws) == 0 {
			return &AxisError{Axis: name, Msg: "empty range"}
		}
		seen := make(map[string]bool, len(raws))
		for _, raw := range raws {
			label, value, err := parseAxisValue(name, raw)
			if err != nil {
				return err
			}
			if seen[label] {
				return &AxisError{Axis: name, Msg: fmt.Sprintf("duplicate value %q (cells would collide)", label)}
			}
			seen[label] = true
			ax.labels = append(ax.labels, label)
			ax.values = append(ax.values, value)
		}
		g.axes = append(g.axes, ax)
	}

	if g.Scenario == "" && !g.hasAxis(AxisScenario) {
		return fmt.Errorf("sweep: no scenario: set the grid's scenario field or declare a scenario axis")
	}
	if g.Scenario != "" && g.hasAxis(AxisScenario) {
		return &AxisError{Axis: AxisScenario, Msg: "scenario axis and top-level scenario are mutually exclusive"}
	}
	if g.hasAxis(AxisTransport) && g.Mode != ModeDaemon {
		return &AxisError{Axis: AxisTransport, Msg: "transport is a daemon-mode axis (set mode: daemon)"}
	}
	if g.hasAxis(AxisBatch) && (g.Mode == ModeDaemon || g.Simulate) {
		return &AxisError{Axis: AxisBatch, Msg: "batch is an in-process replay axis (no daemon mode, no simulate)"}
	}
	if g.hasAxis(AxisWorkers) && g.Simulate {
		return &AxisError{Axis: AxisWorkers, Msg: "workers is a replay/daemon axis (the full simulation sizes its own pool)"}
	}
	return nil
}

// hasAxis reports whether the validated axis set declares name.
func (g *Grid) hasAxis(name string) bool {
	for _, ax := range g.axes {
		if ax.name == name {
			return true
		}
	}
	return false
}

// parseAxisValue validates one raw JSON value against its axis' domain
// and returns the canonical label plus the typed value.
func parseAxisValue(axisName string, raw json.RawMessage) (string, any, error) {
	bad := func(format string, args ...any) (string, any, error) {
		return "", nil, &AxisError{Axis: axisName, Msg: fmt.Sprintf(format, args...)}
	}
	wantString := func(domain ...string) (string, any, error) {
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return bad("value %s: want a string", strings.TrimSpace(string(raw)))
		}
		s = strings.ToLower(strings.TrimSpace(s))
		if s == "" {
			return bad("empty value")
		}
		if len(domain) > 0 {
			for _, d := range domain {
				if s == d {
					return s, s, nil
				}
			}
			return bad("value %q not in {%s}", s, strings.Join(domain, ", "))
		}
		return s, s, nil
	}
	switch axisName {
	case AxisScheme:
		return wantString("sdps", "adps")
	case AxisBatch:
		return wantString("sequential", "each")
	case AxisTransport:
		return wantString("json", "binary")
	case AxisFailurePolicy:
		return wantString("reject", "degrade", "preempt")
	case AxisScenario:
		var s string
		if err := json.Unmarshal(raw, &s); err != nil {
			return bad("value %s: want a file path", strings.TrimSpace(string(raw)))
		}
		if strings.TrimSpace(s) == "" {
			return bad("empty path")
		}
		// The label is the basename sans extension — readable cell names
		// even for testdata/deep/path.json — but collisions on basename
		// are still duplicates (cells must stay distinguishable).
		return scenarioLabel(s), s, nil
	case AxisChurnRate:
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return bad("value %s: want a number", strings.TrimSpace(string(raw)))
		}
		if v <= 0 {
			return bad("rate %v must be positive", v)
		}
		return formatFloat(v), v, nil
	case AxisWorkers:
		var v float64
		if err := json.Unmarshal(raw, &v); err != nil {
			return bad("value %s: want an integer", strings.TrimSpace(string(raw)))
		}
		if v != float64(int(v)) || v < 0 || v > 4096 {
			return bad("worker count %v must be an integer in [0, 4096]", v)
		}
		return fmt.Sprintf("%d", int(v)), int(v), nil
	}
	return bad("unknown axis")
}

// scenarioLabel derives a cell-label from a scenario path.
func scenarioLabel(path string) string {
	base := path
	if i := strings.LastIndexAny(base, `/\`); i >= 0 {
		base = base[i+1:]
	}
	if i := strings.LastIndex(base, "."); i > 0 {
		base = base[:i]
	}
	return base
}

// formatFloat renders an axis number the way the labels stay shortest
// and stable ("0.5", "2", "2.25").
func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", v), "0"), ".")
}

// Label is one axis=value coordinate of a cell.
type Label struct {
	Axis  string
	Value string
}

// Cell is one expanded run of the grid: its coordinate labels (in
// canonical axis order) plus the typed parameter overrides execution
// applies to the base scenario.
type Cell struct {
	Labels []Label

	Scheme        string  // "" = scenario default
	Scenario      string  // "" = grid-level scenario
	ChurnRate     float64 // 0 = scenario default
	Workers       int     // verification pool size
	HasWorkers    bool    // workers axis present (0 is a real value: GOMAXPROCS)
	Batch         string  // "" = sequential
	Transport     string  // "" = json
	FailurePolicy string  // "" = scenario default
}

// Name renders the cell's identity: "scheme=adps/churnRate=0.5". The
// grid name plus this string keys the cell in the merged BENCH document
// and aligns it with its baseline across runs.
func (c *Cell) Name() string {
	parts := make([]string, len(c.Labels))
	for i, l := range c.Labels {
		parts[i] = l.Axis + "=" + l.Value
	}
	return strings.Join(parts, "/")
}

// Cells expands the grid into the cartesian product of its axis values,
// in canonical axis order (the last-listed axis varies fastest). A grid
// with no axes is one bare cell. Validate must have succeeded (LoadGrid
// guarantees it).
func (g *Grid) Cells() []Cell {
	cells := []Cell{{}}
	for _, ax := range g.axes {
		next := make([]Cell, 0, len(cells)*len(ax.labels))
		for _, base := range cells {
			for i := range ax.labels {
				c := base
				c.Labels = append(append([]Label{}, base.Labels...), Label{Axis: ax.name, Value: ax.labels[i]})
				c.apply(ax.name, ax.values[i])
				next = append(next, c)
			}
		}
		cells = next
	}
	return cells
}

// apply sets one typed axis value on the cell.
func (c *Cell) apply(axisName string, v any) {
	switch axisName {
	case AxisScheme:
		c.Scheme = v.(string)
	case AxisScenario:
		c.Scenario = v.(string)
	case AxisChurnRate:
		c.ChurnRate = v.(float64)
	case AxisWorkers:
		c.Workers = v.(int)
		c.HasWorkers = true
	case AxisBatch:
		c.Batch = v.(string)
	case AxisTransport:
		c.Transport = v.(string)
	case AxisFailurePolicy:
		c.FailurePolicy = v.(string)
	}
}

// AxisNames returns the declared axis names in canonical order — the
// column set of a sweep comparison table.
func (g *Grid) AxisNames() []string {
	names := make([]string, len(g.axes))
	for i, ax := range g.axes {
		names[i] = ax.name
	}
	return names
}
