package sweep

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestLoadGridValidation pins the loader's diagnostics: every malformed
// document is rejected with an error naming what is wrong, and per-axis
// problems surface as *AxisError naming the offending axis.
func TestLoadGridValidation(t *testing.T) {
	cases := []struct {
		name     string
		doc      string
		wantErr  string // substring of the error text
		wantAxis string // non-empty: the error must be an *AxisError for this axis
	}{
		{
			name:    "not json",
			doc:     `{"name": `,
			wantErr: "sweep: parse",
		},
		{
			name:    "unknown top-level field",
			doc:     `{"name": "g", "scenario": "s.json", "bogus": 1}`,
			wantErr: "sweep: parse",
		},
		{
			name:    "missing name",
			doc:     `{"scenario": "s.json"}`,
			wantErr: "needs a name",
		},
		{
			name:    "unknown mode",
			doc:     `{"name": "g", "scenario": "s.json", "mode": "cluster"}`,
			wantErr: `unknown mode "cluster"`,
		},
		{
			name:    "simulate in daemon mode",
			doc:     `{"name": "g", "scenario": "s.json", "mode": "daemon", "simulate": true}`,
			wantErr: "simulate is an in-process option",
		},
		{
			name:    "no scenario anywhere",
			doc:     `{"name": "g", "axes": {"scheme": ["sdps"]}}`,
			wantErr: "no scenario",
		},
		{
			name:     "unknown axis",
			doc:      `{"name": "g", "scenario": "s.json", "axes": {"colour": ["red"]}}`,
			wantErr:  "unknown axis",
			wantAxis: "colour",
		},
		{
			name:     "empty range",
			doc:      `{"name": "g", "scenario": "s.json", "axes": {"scheme": []}}`,
			wantErr:  "empty range",
			wantAxis: AxisScheme,
		},
		{
			name:     "duplicate cell",
			doc:      `{"name": "g", "scenario": "s.json", "axes": {"scheme": ["sdps", "SDPS"]}}`,
			wantErr:  "duplicate value",
			wantAxis: AxisScheme,
		},
		{
			name:     "scheme out of domain",
			doc:      `{"name": "g", "scenario": "s.json", "axes": {"scheme": ["edf"]}}`,
			wantErr:  "not in {sdps, adps}",
			wantAxis: AxisScheme,
		},
		{
			name:     "scheme wrong type",
			doc:      `{"name": "g", "scenario": "s.json", "axes": {"scheme": [3]}}`,
			wantErr:  "want a string",
			wantAxis: AxisScheme,
		},
		{
			name:     "negative churn rate",
			doc:      `{"name": "g", "scenario": "s.json", "axes": {"churnRate": [-0.5]}}`,
			wantErr:  "must be positive",
			wantAxis: AxisChurnRate,
		},
		{
			name:     "fractional workers",
			doc:      `{"name": "g", "scenario": "s.json", "axes": {"workers": [1.5]}}`,
			wantErr:  "integer",
			wantAxis: AxisWorkers,
		},
		{
			name:     "scenario axis and top-level scenario",
			doc:      `{"name": "g", "scenario": "s.json", "axes": {"scenario": ["t.json"]}}`,
			wantErr:  "mutually exclusive",
			wantAxis: AxisScenario,
		},
		{
			name:     "transport without daemon mode",
			doc:      `{"name": "g", "scenario": "s.json", "axes": {"transport": ["json"]}}`,
			wantErr:  "daemon-mode axis",
			wantAxis: AxisTransport,
		},
		{
			name:     "batch in daemon mode",
			doc:      `{"name": "g", "scenario": "s.json", "mode": "daemon", "axes": {"batch": ["each"]}}`,
			wantErr:  "replay axis",
			wantAxis: AxisBatch,
		},
		{
			name:     "workers under simulate",
			doc:      `{"name": "g", "scenario": "s.json", "simulate": true, "axes": {"workers": [2]}}`,
			wantErr:  "simulation sizes its own pool",
			wantAxis: AxisWorkers,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := LoadGrid(strings.NewReader(tc.doc))
			if err == nil {
				t.Fatal("malformed grid accepted")
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantErr)
			}
			var ae *AxisError
			if tc.wantAxis != "" {
				if !errors.As(err, &ae) {
					t.Fatalf("error %q is not an *AxisError", err)
				}
				if ae.Axis != tc.wantAxis {
					t.Fatalf("AxisError names %q, want %q", ae.Axis, tc.wantAxis)
				}
			}
		})
	}
}

// TestCellsExpansion pins the cartesian product and its canonical
// order: axes expand in axisOrder regardless of JSON order, the
// last-declared axis varies fastest, and labels join into the cell's
// identity string.
func TestCellsExpansion(t *testing.T) {
	doc := `{
		"name": "expand",
		"scenario": "s.json",
		"axes": {
			"churnRate": [0.25, 0.5],
			"scheme": ["sdps", "adps"]
		}
	}`
	g, err := LoadGrid(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	want := []string{
		"scheme=sdps/churnRate=0.25",
		"scheme=sdps/churnRate=0.5",
		"scheme=adps/churnRate=0.25",
		"scheme=adps/churnRate=0.5",
	}
	if len(cells) != len(want) {
		t.Fatalf("got %d cells, want %d", len(cells), len(want))
	}
	for i, c := range cells {
		if c.Name() != want[i] {
			t.Errorf("cell %d = %q, want %q", i, c.Name(), want[i])
		}
	}
	if cells[2].Scheme != "adps" || cells[2].ChurnRate != 0.25 {
		t.Errorf("typed overrides not applied: %+v", cells[2])
	}
	if got := g.AxisNames(); len(got) != 2 || got[0] != AxisScheme || got[1] != AxisChurnRate {
		t.Errorf("AxisNames = %v", got)
	}
}

// TestCellsNoAxes: a grid without axes is one bare cell.
func TestCellsNoAxes(t *testing.T) {
	g, err := LoadGrid(strings.NewReader(`{"name": "bare", "scenario": "s.json"}`))
	if err != nil {
		t.Fatal(err)
	}
	cells := g.Cells()
	if len(cells) != 1 || cells[0].Name() != "" {
		t.Fatalf("bare grid cells = %+v", cells)
	}
}

// FuzzLoadGrid pins the loader's robustness contract: arbitrary input
// never panics, and per-axis rejections always surface as *AxisError
// naming the offending axis in the message.
func FuzzLoadGrid(f *testing.F) {
	f.Add(`{"name": "g", "scenario": "s.json", "axes": {"scheme": ["sdps", "adps"]}}`)
	f.Add(`{"name": "g", "scenario": "s.json", "axes": {"churnRate": [0.1, 1]}}`)
	f.Add(`{"name": "g", "mode": "daemon", "scenario": "s.json", "axes": {"transport": ["json", "binary"]}}`)
	f.Add(`{"name": "g", "axes": {"scheme": []}}`)
	f.Add(`{"name": "g", "axes": {"bogus": [1]}}`)
	f.Add(`{"axes": {"workers": [0, 1.5, 4096, -1]}}`)
	f.Add(`[1, 2, 3]`)
	f.Add(`{"name": "g", "scenario": "s.json", "axes": {"scheme": ["sdps", "sdps"]}}`)
	f.Add("")
	f.Fuzz(func(t *testing.T, doc string) {
		g, err := LoadGrid(strings.NewReader(doc))
		if err != nil {
			var ae *AxisError
			if errors.As(err, &ae) {
				// The diagnostic must name the offending axis — its
				// quoted form, so even a bizarre empty or whitespace
				// axis key is pointed at unambiguously.
				if !strings.Contains(err.Error(), fmt.Sprintf("%q", ae.Axis)) {
					t.Fatalf("AxisError text %q does not name axis %q", err, ae.Axis)
				}
			}
			return
		}
		// A loaded grid must expand cleanly: at least one cell, every
		// cell's name formed from declared axes only.
		cells := g.Cells()
		if len(cells) == 0 {
			t.Fatal("valid grid expanded to zero cells")
		}
		names := make(map[string]bool, len(cells))
		for _, c := range cells {
			if names[c.Name()] {
				t.Fatalf("duplicate cell name %q", c.Name())
			}
			names[c.Name()] = true
		}
	})
}
