package sweep

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/loadgen"
	"repro/internal/scenario"
	"repro/internal/server"
	"repro/rtether/client"
)

// defaultClients sizes daemon mode's concurrent client pool when the
// grid does not say.
const defaultClients = 8

// runDaemonCell boots a private daemon for the cell — an
// internal/server instance over the cell's network, on ephemeral
// localhost listeners — replays the workload over the wire from
// concurrent clients, snapshots the daemon's coalescing counters, then
// drains and tears everything down. Each cell gets its own daemon, so
// parallel cells never share admission state.
func (g *Grid) runDaemonCell(ctx context.Context, c *Cell, s *scenario.Scenario) (benchfmt.Result, error) {
	items, _, err := s.Workload()
	if err != nil {
		return benchfmt.Result{}, err
	}
	if g.MaxOps > 0 && len(items) > g.MaxOps {
		items = items[:g.MaxOps]
	}
	if len(items) == 0 {
		return benchfmt.Result{}, fmt.Errorf("scenario has no establish/release workload to drive over the wire")
	}
	network, err := s.BuildNetwork(c.Workers)
	if err != nil {
		return benchfmt.Result{}, err
	}
	defer network.Close()

	srv := server.New(server.Config{Network: network})
	var binDone chan struct{}
	defer func() {
		// Close stops the binary accept loop too; wait for it so the
		// cell tears down fully before the next one reuses the port
		// space.
		srv.Close()
		if binDone != nil {
			<-binDone
		}
	}()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return benchfmt.Result{}, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	httpDone := make(chan struct{})
	go func() {
		defer close(httpDone)
		_ = hs.Serve(ln)
	}()
	defer func() {
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		_ = hs.Shutdown(shutdownCtx)
		cancel()
		<-httpDone
	}()

	var copts []client.Option
	if c.Transport == "binary" {
		bln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return benchfmt.Result{}, err
		}
		binDone = make(chan struct{})
		go func() {
			defer close(binDone)
			_ = srv.ServeBinary(bln)
		}()
		copts = append(copts, client.WithTransport(client.TransportBinary), client.WithBinaryAddr(bln.Addr().String()))
	}

	cl := client.New(ln.Addr().String(), copts...)
	defer cl.CloseIdleConnections()
	if err := cl.Healthz(ctx); err != nil {
		return benchfmt.Result{}, fmt.Errorf("daemon not reachable: %w", err)
	}
	statsBefore, err := cl.Stats(ctx)
	if err != nil {
		return benchfmt.Result{}, err
	}
	promBefore, err := cl.MetricsProm(ctx)
	if err != nil {
		return benchfmt.Result{}, fmt.Errorf("scraping /metrics before run: %w", err)
	}

	clients := g.Clients
	if clients < 1 {
		clients = defaultClients
	}
	res := loadgen.Run(ctx, cl, items, clients)
	if ctx.Err() != nil {
		return benchfmt.Result{}, ctx.Err()
	}
	statsAfter, err := cl.Stats(ctx)
	if err != nil {
		return benchfmt.Result{}, err
	}
	promAfter, err := cl.MetricsProm(ctx)
	if err != nil {
		return benchfmt.Result{}, fmt.Errorf("scraping /metrics after run: %w", err)
	}
	if n := res.ProtoErrs(); n > 0 {
		return benchfmt.Result{}, fmt.Errorf("%d protocol errors during replay", n)
	}

	est := res.Establish
	out := benchfmt.Result{
		Name: cellTitle(g, c),
		Runs: int64(res.Ops()),
		Metrics: map[string]float64{
			"accepted":     float64(est.Accepted),
			"rejected":     float64(est.Rejected),
			"released":     float64(res.Release.Accepted),
			"skipped":      float64(res.Release.Skipped),
			"ops/s":        res.OpsPerSec(),
			"wall-ns":      float64(res.Wall.Nanoseconds()),
			"clients":      float64(clients),
			"flights":      float64(statsAfter.Server.Flights - statsBefore.Server.Flights),
			"repartitions": float64(statsAfter.Admission.Repartitions - statsBefore.Admission.Repartitions),
		},
	}
	// Server-side counters attributed to this cell by differencing the
	// /metrics scrape taken before and after the replay.
	delta := func(series string) float64 { return promAfter[series] - promBefore[series] }
	linksChecked := delta("rtether_links_checked_total")
	cacheHits := delta("rtether_verify_cache_hits_total")
	out.Metrics["srv-links-checked"] = linksChecked
	out.Metrics["srv-verify-cache-hits"] = cacheHits
	if linksChecked > 0 {
		out.Metrics["srv-cache-hit-rate"] = cacheHits / linksChecked
	}
	out.Metrics["srv-flights"] = delta("rtether_flights_total")
	if f := delta("rtether_flights_total"); f > 0 {
		// Establishes per flight: the coalescer's effective merge factor.
		out.Metrics["srv-coalesce-merges"] = delta("rtether_establishes_total") / f
	}
	out.Metrics["srv-watch-evictions"] = delta("rtether_watch_evictions_total")
	out.Metrics["srv-sweep-seconds"] = delta("rtether_sweep_seconds_total")
	if est.Lat.Count() > 0 {
		out.Metrics["ns/op"] = est.Lat.Mean()
		out.Metrics["est-p50-ns"] = float64(est.Lat.Percentile(50))
		out.Metrics["est-p90-ns"] = float64(est.Lat.Percentile(90))
		out.Metrics["est-p99-ns"] = float64(est.Lat.Percentile(99))
		out.Metrics["est-max-ns"] = float64(est.Lat.Max())
	}
	return out, nil
}
