package obs

import (
	"sync"
	"time"
)

// Span records where one coalesced admission flight spent its time:
// how long merged requests waited to join, how long the kernel pass
// took (and, within it, the verification sweep), and how long verdict
// publication took. Spans are the flight-level complement to the
// registry's aggregate histograms — the registry answers "what is p99",
// the span ring answers "what did flight 1234 actually do".
type Span struct {
	// Flight is the flight's sequence number (the server's flight
	// counter at dispatch).
	Flight int64 `json:"flight"`
	// Start is when the flight was dispatched into the kernel.
	Start time.Time `json:"start"`
	// Merged is how many establish requests the flight decided.
	Merged int `json:"merged"`
	// WaitNs is the longest time any merged request spent queued before
	// the flight dispatched (the coalesce wait).
	WaitNs int64 `json:"waitNs"`
	// AdmitNs is the duration of the merged kernel admission pass.
	AdmitNs int64 `json:"admitNs"`
	// VerifyNs is the portion of AdmitNs spent in the EDF verification
	// sweep (from the kernel's sweep-time counter delta).
	VerifyNs int64 `json:"verifyNs"`
	// PublishNs is how long posting verdicts and watch events took.
	PublishNs int64 `json:"publishNs"`
	// Accepted and Rejected split the flight's verdicts.
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected"`
}

// SpanRing is a bounded, concurrency-safe ring of the most recent
// spans. Recording overwrites the oldest entry once full; Snapshot
// returns oldest-first. The ring is off the admission hot path (one
// record per flight, not per request), so a mutex is fine here.
type SpanRing struct {
	mu   sync.Mutex
	buf  []Span
	next int
	full bool
}

// NewSpanRing returns a ring holding the last capacity spans
// (minimum 1).
func NewSpanRing(capacity int) *SpanRing {
	if capacity < 1 {
		capacity = 1
	}
	return &SpanRing{buf: make([]Span, capacity)}
}

// Record stores one span, evicting the oldest when full.
func (r *SpanRing) Record(s Span) {
	r.mu.Lock()
	r.buf[r.next] = s
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.mu.Unlock()
}

// Snapshot returns the recorded spans oldest-first.
func (r *SpanRing) Snapshot() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Span(nil), r.buf[:r.next]...)
	}
	out := make([]Span, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Len returns how many spans are currently held.
func (r *SpanRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.full {
		return len(r.buf)
	}
	return r.next
}
