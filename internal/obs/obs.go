// Package obs is the repository's dependency-free observability spine:
// a metrics registry of atomic counters, gauges and fixed-bucket
// latency histograms with Prometheus-text exposition (prom.go), plus a
// bounded ring of admission spans (span.go) recording where each
// coalesced flight spent its time.
//
// The hot-path contract is strict: once a metric is registered,
// Counter.Add, Gauge.Set and Histogram.Observe perform no allocations
// and take no locks — they are single atomic operations on
// pre-allocated storage, cheap enough to live inside the admission
// sweep that internal/admit pins at 0 allocs/op. All formatting,
// labeling and map lookups happen at registration or scrape time,
// never per observation.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable, but counters are normally created through Registry.Counter so
// they appear in the exposition.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Allocation-free.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Inc increments the counter by one. Allocation-free.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depths, subscriber
// counts, high-water marks).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value. Allocation-free.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease). Allocation-free.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Max ratchets the gauge up to n if n exceeds the current value.
// Allocation-free; safe under concurrent ratchets.
func (g *Gauge) Max(n int64) {
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Load returns the current gauge value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count of every Histogram: power-of-2
// upper bounds 1, 2, 4, … 2^(histBuckets-2), plus a final +Inf bucket.
// 2^38 ns ≈ 275 s, so the finite range covers every latency this
// daemon can plausibly produce.
const histBuckets = 40

// histTopBound is the largest finite bucket bound; saturated
// observations quantile to it.
const histTopBound = int64(1) << (histBuckets - 2)

// Histogram is a fixed-bucket latency histogram with power-of-2 bounds.
// Observe is allocation-free and lock-free: the bucket index is a
// single bits.Len64, and buckets/sum/count are atomics on pre-allocated
// storage. Quantiles are extracted at read time from the cumulative
// bucket counts.
type Histogram struct {
	buckets [histBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// bucketOf returns the index of the smallest bucket whose upper bound
// holds v: bucket i spans (2^(i-1), 2^i]. Non-positive values land in
// bucket 0; values beyond the finite range land in the +Inf bucket.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	i := bits.Len64(uint64(v - 1))
	if i >= histBuckets {
		return histBuckets - 1
	}
	return i
}

// Observe records one value (conventionally nanoseconds, but any
// non-negative magnitude works — flight sizes use it too).
// Allocation-free.
func (h *Histogram) Observe(v int64) {
	h.buckets[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Quantile returns the upper bucket bound at quantile q in [0, 1]: the
// smallest bucket bound b such that at least q of all observations are
// ≤ b. Edge cases are pinned by tests: an empty histogram returns 0; a
// single sample returns its bucket bound; observations saturating the
// +Inf bucket return the largest finite bound.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q * float64(total))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= rank {
			if i == histBuckets-1 {
				return histTopBound
			}
			return int64(1) << i
		}
	}
	return histTopBound
}

// Label is one name="value" pair attached to a metric at registration
// time. Labels are rendered once, at registration — never on the hot
// path.
type Label struct {
	Key, Value string
}

// metricKind discriminates the exposition TYPE of a registered series.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindCounterFunc
)

// metric is one registered series: a family name, an optional rendered
// label set, and exactly one of the typed value holders.
type metric struct {
	name   string
	help   string
	labels string // pre-rendered `k="v",k2="v2"`, "" when unlabeled
	kind   metricKind

	counter   *Counter
	gauge     *Gauge
	gaugeFunc func() float64
	hist      *Histogram
}

// Registry holds registered metrics and renders them in Prometheus text
// format. Registration takes a lock; reading and writing metric values
// does not. Register every series up front — series of the same family
// (same name, different labels) should be registered consecutively so
// the exposition groups them under one HELP/TYPE header.
type Registry struct {
	mu      sync.Mutex
	metrics []*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.add(&metric{name: name, help: help, labels: renderLabels(labels), kind: kindCounter, counter: c})
	return c
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	r.add(&metric{name: name, help: help, labels: renderLabels(labels), kind: kindGauge, gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is collected by calling f at
// scrape time. It is how existing counters (rtether.AdmissionStats,
// coalescer atomics) are promoted into the exposition with zero
// hot-path cost: the instrumented code keeps its own counters and the
// registry reads them only when scraped.
func (r *Registry) GaugeFunc(name, help string, f func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, labels: renderLabels(labels), kind: kindGaugeFunc, gaugeFunc: f})
}

// CounterFunc registers a counter whose value is collected by calling f
// at scrape time — the monotonic twin of GaugeFunc, for promoting
// counters that already exist elsewhere (admission totals, coalescer
// flight counts) into the exposition under the counter TYPE.
func (r *Registry) CounterFunc(name, help string, f func() float64, labels ...Label) {
	r.add(&metric{name: name, help: help, labels: renderLabels(labels), kind: kindCounterFunc, gaugeFunc: f})
}

// Histogram registers and returns a histogram series.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	h := &Histogram{}
	r.add(&metric{name: name, help: help, labels: renderLabels(labels), kind: kindHistogram, hist: h})
	return h
}

// add appends one series under the registration lock.
func (r *Registry) add(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.metrics = append(r.metrics, m)
}

// snapshot copies the series slice so exposition can run without
// holding the registration lock.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*metric(nil), r.metrics...)
}

// renderLabels renders a label set once, at registration time.
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b []byte
	for i, l := range labels {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, l.Key...)
		b = append(b, '=', '"')
		b = appendEscaped(b, l.Value)
		b = append(b, '"')
	}
	return string(b)
}

// appendEscaped escapes a label value per the Prometheus text format.
func appendEscaped(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b = append(b, '\\', '\\')
		case '"':
			b = append(b, '\\', '"')
		case '\n':
			b = append(b, '\\', 'n')
		default:
			b = append(b, s[i])
		}
	}
	return b
}
