package obs

import (
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the full text exposition byte for
// byte: HELP/TYPE grouping, label rendering, compact cumulative
// histogram buckets and the always-present +Inf bucket.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rtether_admit_total", "Channels admitted.")
	r.Counter("rtether_http_requests_total", "HTTP requests served.",
		Label{Key: "endpoint", Value: "/v1/establish"})
	r.Counter("rtether_http_requests_total", "HTTP requests served.",
		Label{Key: "endpoint", Value: "/v1/release"})
	g := r.Gauge("rtether_watch_subscribers", "Open watch streams.")
	r.GaugeFunc("rtether_uptime_ratio", "Constant for the golden test.", func() float64 { return 0.5 })
	h := r.Histogram("rtether_flight_wait_ns", "Coalesce wait per flight.")

	c.Add(42)
	g.Set(3)
	h.Observe(1)    // bucket le="1"
	h.Observe(3)    // bucket le="4"
	h.Observe(1000) // bucket le="1024"

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := strings.Join([]string{
		`# HELP rtether_admit_total Channels admitted.`,
		`# TYPE rtether_admit_total counter`,
		`rtether_admit_total 42`,
		`# HELP rtether_http_requests_total HTTP requests served.`,
		`# TYPE rtether_http_requests_total counter`,
		`rtether_http_requests_total{endpoint="/v1/establish"} 0`,
		`rtether_http_requests_total{endpoint="/v1/release"} 0`,
		`# HELP rtether_watch_subscribers Open watch streams.`,
		`# TYPE rtether_watch_subscribers gauge`,
		`rtether_watch_subscribers 3`,
		`# HELP rtether_uptime_ratio Constant for the golden test.`,
		`# TYPE rtether_uptime_ratio gauge`,
		`rtether_uptime_ratio 0.5`,
		`# HELP rtether_flight_wait_ns Coalesce wait per flight.`,
		`# TYPE rtether_flight_wait_ns histogram`,
		`rtether_flight_wait_ns_bucket{le="1"} 1`,
		`rtether_flight_wait_ns_bucket{le="4"} 2`,
		`rtether_flight_wait_ns_bucket{le="1024"} 3`,
		`rtether_flight_wait_ns_bucket{le="+Inf"} 3`,
		`rtether_flight_wait_ns_sum 1004`,
		`rtether_flight_wait_ns_count 3`,
		``,
	}, "\n")
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestLabelEscaping checks Prometheus label-value escaping.
func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "escaping", Label{Key: "path", Value: "a\"b\\c\nd"})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(sb.String(), `esc_total{path="a\"b\\c\nd"} 0`) {
		t.Fatalf("escaped label missing from:\n%s", sb.String())
	}
}

// TestParseTextRoundTrip checks that ParseText recovers what
// WritePrometheus rendered — the contract the sweep/loadgen scrapers
// rely on.
func TestParseTextRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("rt_ops_total", "ops")
	lc := r.Counter("rt_req_total", "reqs", Label{Key: "endpoint", Value: "/v1/establish"})
	h := r.Histogram("rt_lat_ns", "latency")
	c.Add(7)
	lc.Add(2)
	h.Observe(100)
	h.Observe(200)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	m, err := ParseText(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	checks := map[string]float64{
		"rt_ops_total":                           7,
		`rt_req_total{endpoint="/v1/establish"}`: 2,
		"rt_lat_ns_count":                        2,
		"rt_lat_ns_sum":                          300,
	}
	for k, want := range checks {
		if got, ok := m[k]; !ok || got != want {
			t.Errorf("parsed[%q] = %v (present=%v), want %v", k, got, ok, want)
		}
	}
}

// TestParseTextSkipsGarbage checks that malformed lines are ignored
// rather than fatal.
func TestParseTextSkipsGarbage(t *testing.T) {
	in := "# comment\n\nbroken-line\nname notanumber\ngood 4\n"
	m, err := ParseText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ParseText: %v", err)
	}
	if len(m) != 1 || m["good"] != 4 {
		t.Fatalf("parsed = %v, want only good=4", m)
	}
}
