package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestCounterGauge exercises the scalar metrics' basic arithmetic.
func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	var g Gauge
	g.Set(10)
	g.Add(-3)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	g.Max(5)
	if got := g.Load(); got != 7 {
		t.Fatalf("gauge after Max(5) = %d, want 7 (ratchet must not lower)", got)
	}
	g.Max(42)
	if got := g.Load(); got != 42 {
		t.Fatalf("gauge after Max(42) = %d, want 42", got)
	}
}

// TestHistogramBuckets pins the power-of-2 bucketing: each observation
// must land in the smallest bucket whose bound holds it.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
		{1 << 20, 20}, {1<<20 + 1, 21}, {histTopBound, histBuckets - 2},
		{histTopBound + 1, histBuckets - 1}, {1 << 62, histBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestHistogramQuantileEdgeCases pins the documented edge cases: empty
// histogram, single sample, and observations saturating the top bucket.
func TestHistogramQuantileEdgeCases(t *testing.T) {
	var h Histogram
	// Empty: every quantile is 0.
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty Quantile(%v) = %d, want 0", q, got)
		}
	}
	// Single sample: every quantile is its bucket bound.
	h.Observe(1000) // bucket bound 1024
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 1024 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 1024", q, got)
		}
	}
	// Saturated top bucket: values beyond the finite range quantile to
	// the largest finite bound, never to a nonsense +Inf.
	var sat Histogram
	for i := 0; i < 10; i++ {
		sat.Observe(histTopBound * 4)
	}
	if got := sat.Quantile(0.99); got != histTopBound {
		t.Fatalf("saturated Quantile(0.99) = %d, want top bound %d", got, histTopBound)
	}
}

// TestHistogramQuantileSpread checks quantile extraction over a known
// distribution: 90 fast observations and 10 slow ones.
func TestHistogramQuantileSpread(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100) // bucket bound 128
	}
	for i := 0; i < 10; i++ {
		h.Observe(100000) // bucket bound 131072
	}
	if got := h.Quantile(0.50); got != 128 {
		t.Fatalf("p50 = %d, want 128", got)
	}
	if got := h.Quantile(0.90); got != 128 {
		t.Fatalf("p90 = %d, want 128 (rank 90 of 100 is the last fast sample)", got)
	}
	if got := h.Quantile(0.99); got != 131072 {
		t.Fatalf("p99 = %d, want 131072", got)
	}
	if got, want := h.Count(), int64(100); got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
	if got, want := h.Sum(), int64(90*100+10*100000); got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

// TestConcurrentMutation hammers one counter, gauge and histogram from
// many goroutines; run under -race this is the data-race gate for the
// whole hot path, and the final totals prove no increment was lost.
func TestConcurrentMutation(t *testing.T) {
	const goroutines = 16
	const perG = 2000
	r := NewRegistry()
	c := r.Counter("obs_test_ops_total", "test counter")
	g := r.Gauge("obs_test_depth", "test gauge")
	h := r.Histogram("obs_test_latency_ns", "test histogram")
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(seed*100 + int64(j%7))
				if j%100 == 0 {
					var sb strings.Builder
					if err := r.WritePrometheus(&sb); err != nil {
						t.Errorf("WritePrometheus: %v", err)
						return
					}
				}
			}
		}(int64(i + 1))
	}
	wg.Wait()
	if got, want := c.Load(), int64(goroutines*perG); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
	if got := g.Load(); got != 0 {
		t.Fatalf("gauge = %d, want 0", got)
	}
	if got, want := h.Count(), int64(goroutines*perG); got != want {
		t.Fatalf("histogram count = %d, want %d", got, want)
	}
}

// TestSpanRing checks wraparound and oldest-first snapshots.
func TestSpanRing(t *testing.T) {
	r := NewSpanRing(3)
	if got := r.Len(); got != 0 {
		t.Fatalf("empty ring Len = %d", got)
	}
	for i := 1; i <= 5; i++ {
		r.Record(Span{Flight: int64(i)})
	}
	if got := r.Len(); got != 3 {
		t.Fatalf("Len = %d, want 3", got)
	}
	snap := r.Snapshot()
	want := []int64{3, 4, 5}
	for i, s := range snap {
		if s.Flight != want[i] {
			t.Fatalf("snapshot[%d].Flight = %d, want %d (got %v)", i, s.Flight, want[i], snap)
		}
	}
}

// TestHotPathZeroAllocs pins the registry's hot-path contract: once
// registered, counter adds, gauge sets and histogram observations
// allocate nothing. The admission sweep's own 0 allocs/op pin
// (internal/admit) depends on this holding.
func TestHotPathZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("obs_alloc_total", "pin", Label{Key: "k", Value: "v"})
	g := r.Gauge("obs_alloc_depth", "pin")
	h := r.Histogram("obs_alloc_ns", "pin")
	if n := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		g.Set(7)
		g.Max(9)
		h.Observe(12345)
	}); n != 0 {
		t.Fatalf("hot path allocates %v allocs/op, want 0", n)
	}
}
