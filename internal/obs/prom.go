package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered series in the Prometheus
// text exposition format, grouping consecutive series of the same
// family under one # HELP / # TYPE header. Histograms expand into
// cumulative _bucket{le=…} series plus _sum and _count. Output order is
// registration order, so the rendering is deterministic (golden-tested
// in prom_test.go).
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	prevFamily := ""
	for _, m := range r.snapshot() {
		if m.name != prevFamily {
			typ := "counter"
			switch m.kind {
			case kindGauge, kindGaugeFunc:
				typ = "gauge"
			case kindHistogram:
				typ = "histogram"
			}
			fmt.Fprintf(bw, "# HELP %s %s\n", m.name, m.help)
			fmt.Fprintf(bw, "# TYPE %s %s\n", m.name, typ)
			prevFamily = m.name
		}
		switch m.kind {
		case kindCounter:
			writeSample(bw, m.name, m.labels, float64(m.counter.Load()))
		case kindGauge:
			writeSample(bw, m.name, m.labels, float64(m.gauge.Load()))
		case kindGaugeFunc, kindCounterFunc:
			writeSample(bw, m.name, m.labels, m.gaugeFunc())
		case kindHistogram:
			writeHistogram(bw, m)
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram's cumulative buckets, sum and
// count.
func writeHistogram(w io.Writer, m *metric) {
	var cum int64
	for i := 0; i < histBuckets; i++ {
		n := m.hist.buckets[i].Load()
		cum += n
		if n == 0 && i < histBuckets-1 {
			// Keep the exposition compact: only materialized finite
			// buckets are printed (cumulative semantics make the skipped
			// ones recoverable), but le="+Inf" always appears.
			continue
		}
		le := "+Inf"
		if i < histBuckets-1 {
			le = strconv.FormatInt(int64(1)<<i, 10)
		}
		labels := `le="` + le + `"`
		if m.labels != "" {
			labels = m.labels + "," + labels
		}
		writeSample(w, m.name+"_bucket", labels, float64(cum))
	}
	writeSample(w, m.name+"_sum", m.labels, float64(m.hist.Sum()))
	writeSample(w, m.name+"_count", m.labels, float64(m.hist.Count()))
}

// writeSample renders one `name{labels} value` line.
func writeSample(w io.Writer, name, labels string, v float64) {
	if labels == "" {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(v))
		return
	}
	fmt.Fprintf(w, "%s{%s} %s\n", name, labels, formatValue(v))
}

// formatValue renders a sample value: integral values print without a
// decimal point, everything else with full float precision.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ParseText parses a Prometheus text exposition into a flat map from
// series (the full `name{labels}` string, or the bare name when
// unlabeled) to value. It is the scrape half of the loop: sweep daemon
// mode and rtload GET /metrics before and after a run and difference
// the two maps to attribute server-side counters to the cell. Comment
// and blank lines are skipped; malformed lines are ignored rather than
// fatal, so a scrape never kills a run.
func ParseText(r io.Reader) (map[string]float64, error) {
	out := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			continue
		}
		out[line[:sp]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
