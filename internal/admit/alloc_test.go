package admit

import (
	"testing"
)

// loadVerifyState fills an engine with channels whose tasks have D < P
// (so the demand sweep actually runs) spread over several links, and
// returns the changed-set covering every loaded link.
func loadVerifyState(t testing.TB, e *Engine[int, *toyChan, int64]) map[int]struct{} {
	t.Helper()
	schemes := []Scheme[int, *toyChan, int64]{constScheme(40)}
	for i := 0; i < 64; i++ {
		a, b := i%16, 16+(i%16)
		_, rej := e.Admit(1, func(_ int, id ID) *toyChan {
			return &toyChan{id: id, c: 2, p: 400, links: []int{a, b}}
		}, schemes)
		if rej != nil {
			t.Fatalf("setup admit %d rejected: %v", i, rej.Result)
		}
	}
	changed := make(map[int]struct{})
	for _, l := range e.state.Links() {
		changed[l] = struct{}{}
	}
	return changed
}

// TestVerifySweepZeroAllocs pins the steady-state sequential verify
// sweep at 0 allocs/op: with the engine-owned scratch arena, the reused
// sweep buffers and the warm task cache, re-verifying every loaded link
// must not touch the heap. The cache-disabled engine is used so every
// link runs the full EDF analysis rather than a verdict-cache skip.
func TestVerifySweepZeroAllocs(t *testing.T) {
	e := newToyEngine(Config{Workers: 1, NoSweepCache: true})
	changed := loadVerifyState(t, e)

	e.verify(e.state, changed) // warm buffers and the task cache
	if avg := testing.AllocsPerRun(100, func() {
		if rej := e.verify(e.state, changed); rej != nil {
			t.Fatalf("sweep rejected: %v", rej.Result)
		}
	}); avg != 0 {
		t.Errorf("steady-state verify sweep allocates %.1f allocs/op, want 0", avg)
	}
}

// TestVerifySweepCachedZeroAllocs pins the all-hits cache path too: a
// sweep where every link's verdict comes from the generation cache must
// also be allocation-free.
func TestVerifySweepCachedZeroAllocs(t *testing.T) {
	e := newToyEngine(Config{Workers: 1})
	changed := loadVerifyState(t, e)

	e.verify(e.state, changed) // records feasGen for every link
	if avg := testing.AllocsPerRun(100, func() {
		if rej := e.verify(e.state, changed); rej != nil {
			t.Fatalf("sweep rejected: %v", rej.Result)
		}
	}); avg != 0 {
		t.Errorf("cached verify sweep allocates %.1f allocs/op, want 0", avg)
	}
}

// TestSweepCacheSkipsUnchangedLinks proves the cache semantics at kernel
// level: re-verifying an unchanged state is pure cache hits, and a
// content change on one link invalidates exactly that link.
func TestSweepCacheSkipsUnchangedLinks(t *testing.T) {
	e := newToyEngine(Config{Workers: 1})
	changed := loadVerifyState(t, e)

	e.verify(e.state, changed)
	before := e.sweepSkips
	e.verify(e.state, changed)
	if hits := e.sweepSkips - before; hits != len(changed) {
		t.Fatalf("unchanged re-sweep: %d cache hits, want %d", hits, len(changed))
	}

	// Mutate one channel's partition: its links (and only its links) must
	// be re-analyzed on the next sweep.
	var victim *toyChan
	for _, ch := range e.state.Channels() {
		victim = ch
		break
	}
	e.state.SetPart(victim, 39)
	before = e.sweepSkips
	e.verify(e.state, changed)
	if hits := e.sweepSkips - before; hits != len(changed)-len(victim.links) {
		t.Fatalf("after one-channel change: %d hits, want %d", hits, len(changed)-len(victim.links))
	}
}

// BenchmarkVerifySweep measures the steady-state sweep with and without
// the verdict cache (sequential, warm task cache).
func BenchmarkVerifySweep(b *testing.B) {
	for _, mode := range []struct {
		name    string
		noCache bool
	}{{"cached", false}, {"uncached", true}} {
		b.Run(mode.name, func(b *testing.B) {
			e := newToyEngine(Config{Workers: 1, NoSweepCache: mode.noCache})
			changed := loadVerifyState(b, e)
			e.verify(e.state, changed)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.verify(e.state, changed)
			}
		})
	}
}
