package admit

// AdmitEach runs per-spec admission for a merged batch of n channel
// requests: every request gets its own accept/reject verdict — unlike
// Admit, which treats the batch as one all-or-nothing decision — at a
// cost that scales with how much of the group is rejected, not with n.
// A group that is feasible together costs exactly one repartition pass;
// with r rejections the bisection adds O(r log(n/r)) narrowing passes,
// and in the worst case — everything rejected — it visits every node of
// the bisection tree, just under 2n passes, about twice sequential
// submission. This is the kernel primitive behind request coalescing: a
// front-end that merges the establish requests of many concurrent
// clients needs each client to receive exactly the verdict it would
// have received alone, at close to batch cost in the common
// mostly-feasible case.
//
// Verdicts are positional: the returned channels and rejections are
// parallel to the specs, with chs[i] set (and rejs[i] nil) for an
// accepted request and rejs[i] carrying the full per-link diagnostic
// for a rejected one. mk must be pure — it may be invoked more than
// once for the same index while the engine narrows down failures.
//
// The decision procedure is greedy bisection. First the whole group is
// tried as one Admit (one repartition pass per scheme). If it verifies,
// every request is accepted; if not, the group is split in half and
// each half decided recursively, the left half first so it is decided
// against exactly the state a sequential submission would have seen.
// Rejections therefore always bottom out on single-spec Admit calls,
// whose verdicts and diagnostics are bit-identical to sequential
// submission by construction.
//
// For monotone schemes — schemes whose per-channel partition does not
// depend on the rest of the system (SDPS, H-SDPS, FixedDPS), so that
// adding channels can only add demand — the accept side is exact too:
// a group that verifies as a whole implies every sequential prefix
// verifies, hence AdmitEach is decision-equivalent to submitting the
// specs one by one. Load-adaptive schemes (ADPS, H-ADPS) repartition
// existing channels as the system grows; in principle a merged group
// could verify under the group's partitioning where some prefix alone
// would not, but the adapters' replay suites pin decision equivalence
// on representative star and fabric workloads for those schemes as
// well.
//
// On return, Repartitioned reports the union of every channel whose
// partition changed across all accepted sub-decisions (including the
// new channels), ascending — the precise set a running simulation must
// re-sync, exactly as after Admit.
func (e *Engine[K, Ch, P]) AdmitEach(n int, mk func(i int, id ID) Ch, schemes []Scheme[K, Ch, P]) ([]Ch, []*Rejection[K]) {
	chs := make([]Ch, n)
	rejs := make([]*Rejection[K], n)
	if n == 0 {
		e.repartitioned = nil
		return chs, rejs
	}
	repart := make(map[ID]struct{})
	e.admitRange(0, n, mk, schemes, chs, rejs, repart)
	ids := make([]ID, 0, len(repart))
	for id := range repart {
		ids = append(ids, id)
	}
	sortIDs(ids)
	e.repartitioned = ids
	return chs, rejs
}

// admitRange decides specs [lo, hi) by greedy bisection, writing
// verdicts into chs/rejs and accumulating the repartitioned-channel
// union into repart.
func (e *Engine[K, Ch, P]) admitRange(lo, hi int, mk func(i int, id ID) Ch, schemes []Scheme[K, Ch, P], chs []Ch, rejs []*Rejection[K], repart map[ID]struct{}) {
	got, rej := e.Admit(hi-lo, func(i int, id ID) Ch { return mk(lo+i, id) }, schemes)
	if rej == nil {
		copy(chs[lo:hi], got)
		for _, id := range e.repartitioned {
			repart[id] = struct{}{}
		}
		return
	}
	if hi-lo == 1 {
		rejs[lo] = rej
		return
	}
	mid := lo + (hi-lo)/2
	e.admitRange(lo, mid, mk, schemes, chs, rejs, repart)
	e.admitRange(mid, hi, mk, schemes, chs, rejs, repart)
}
