package admit

import (
	"math/rand"
	"testing"
)

// randomToySpecs draws n channels over a small link universe: heavy
// enough that a good fraction of admissions fail, so bisection has
// failures to narrow down.
func randomToySpecs(rng *rand.Rand, n int) []func(id ID) *toyChan {
	out := make([]func(id ID) *toyChan, n)
	for i := 0; i < n; i++ {
		c := int64(1 + rng.Intn(4))
		p := int64(20 + rng.Intn(80))
		a := rng.Intn(6)
		b := rng.Intn(6)
		for b == a {
			b = rng.Intn(6)
		}
		out[i] = func(id ID) *toyChan {
			return &toyChan{id: id, c: c, p: p, links: []int{a, b}}
		}
	}
	return out
}

// TestAdmitEachMatchesSequential replays the same request stream through
// AdmitEach (one merged group) and through sequential Admit calls on a
// fresh engine, and requires identical verdicts, rejection diagnostics,
// committed channel IDs and committed state — the kernel half of the
// coalescing decision-equivalence contract (constScheme is monotone, so
// equivalence is exact by construction).
func TestAdmitEachMatchesSequential(t *testing.T) {
	schemes := []Scheme[int, *toyChan, int64]{constScheme(8)}
	for _, n := range []int{1, 2, 7, 64, 200} {
		rng := rand.New(rand.NewSource(int64(n)))
		mks := randomToySpecs(rng, n)

		merged := newToyEngine(Config{Workers: 1})
		chs, rejs := merged.AdmitEach(n, func(i int, id ID) *toyChan { return mks[i](id) }, schemes)

		seq := newToyEngine(Config{Workers: 1})
		accepted := 0
		for i := 0; i < n; i++ {
			sch, srej := seq.Admit(1, func(_ int, id ID) *toyChan { return mks[i](id) }, schemes)
			if (srej == nil) != (rejs[i] == nil) {
				t.Fatalf("n=%d spec %d: merged rejected=%v, sequential rejected=%v", n, i, rejs[i] != nil, srej != nil)
			}
			if srej != nil {
				if rejs[i].Link != srej.Link || rejs[i].Result.String() != srej.Result.String() {
					t.Fatalf("n=%d spec %d: diagnostics differ: merged %v@%d, sequential %v@%d",
						n, i, rejs[i].Result, rejs[i].Link, srej.Result, srej.Link)
				}
				continue
			}
			accepted++
			if chs[i].id != sch[0].id {
				t.Fatalf("n=%d spec %d: ID %d, sequential allocated %d", n, i, chs[i].id, sch[0].id)
			}
		}
		if merged.State().Len() != seq.State().Len() {
			t.Fatalf("n=%d: merged state has %d channels, sequential %d", n, merged.State().Len(), seq.State().Len())
		}
		if accepted == n && n > 1 && merged.Repartitions() != 1 {
			t.Fatalf("n=%d all accepted: merged ran %d repartition passes, want 1", n, merged.Repartitions())
		}
		if merged.Repartitions() > 2*seq.Repartitions() {
			t.Fatalf("n=%d: merged ran %d repartition passes vs sequential %d — bisection should not blow up",
				n, merged.Repartitions(), seq.Repartitions())
		}
		t.Logf("n=%d: accepted %d/%d, repartition passes merged=%d sequential=%d",
			n, accepted, n, merged.Repartitions(), seq.Repartitions())
	}
}

// TestAdmitEachRepartitionedUnion checks that Repartitioned after a
// merged decision reports every accepted channel across all
// sub-decisions (the budget re-sync set), even when bisection split the
// group.
func TestAdmitEachRepartitionedUnion(t *testing.T) {
	schemes := []Scheme[int, *toyChan, int64]{constScheme(8)}
	// Three acceptable channels and one rejected one: the third saturates
	// link 1 (two C=5/P=6 tasks push U past 1), so bisection must split
	// the group and the re-sync union must still cover all three accepts.
	mks := []func(id ID) *toyChan{
		func(id ID) *toyChan { return &toyChan{id: id, c: 1, p: 100, links: []int{0}} },
		func(id ID) *toyChan { return &toyChan{id: id, c: 5, p: 6, links: []int{1}} },
		func(id ID) *toyChan { return &toyChan{id: id, c: 5, p: 6, links: []int{1}} }, // overloads link 1
		func(id ID) *toyChan { return &toyChan{id: id, c: 1, p: 100, links: []int{2}} },
	}
	e := newToyEngine(Config{Workers: 1})
	chs, rejs := e.AdmitEach(len(mks), func(i int, id ID) *toyChan { return mks[i](id) }, schemes)
	wantRejected := map[int]bool{2: true}
	var wantIDs []ID
	for i := range mks {
		if wantRejected[i] {
			if rejs[i] == nil {
				t.Fatalf("spec %d unexpectedly accepted", i)
			}
			continue
		}
		if rejs[i] != nil {
			t.Fatalf("spec %d rejected: %v", i, rejs[i].Result)
		}
		wantIDs = append(wantIDs, chs[i].id)
	}
	got := e.Repartitioned()
	if len(got) != len(wantIDs) {
		t.Fatalf("Repartitioned = %v, want %v", got, wantIDs)
	}
	for i, id := range wantIDs {
		if got[i] != id {
			t.Fatalf("Repartitioned = %v, want %v", got, wantIDs)
		}
	}
}

// TestAdmitEachEmpty covers the degenerate empty group.
func TestAdmitEachEmpty(t *testing.T) {
	e := newToyEngine(Config{Workers: 1})
	chs, rejs := e.AdmitEach(0, nil, []Scheme[int, *toyChan, int64]{constScheme(8)})
	if len(chs) != 0 || len(rejs) != 0 {
		t.Fatalf("AdmitEach(0) = %v, %v", chs, rejs)
	}
	if ids := e.Repartitioned(); len(ids) != 0 {
		t.Fatalf("Repartitioned = %v after empty admit", ids)
	}
}
