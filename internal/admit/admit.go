// Package admit is the generic copy-on-write admission kernel shared by
// the star (internal/core) and fabric (internal/topo) admission
// controllers. Both controllers implement the same paper algorithm — put
// every channel's per-link tasks on link pseudo-processors, repartition
// deadlines with a pluggable scheme, and verify EDF feasibility of every
// link whose task set changed — so the state bookkeeping (persistent
// per-link channel lists, task-set and exact rational utilization caches),
// the delta engine with undo-on-reject rollback, the changed-set tracking,
// and the clone-everything reference engine live here exactly once,
// generic over the link-key type K (core.Link or topo.Edge), the channel
// type Ch and the partition type P (a two-way split or a per-hop vector).
//
// The adapters keep what is genuinely theirs: spec validation, routing,
// the DPS/HDPS plug-in interfaces, and diagnostics wording.
package admit

import (
	"fmt"
	"math/big"
	"sort"

	"repro/internal/edf"
)

// ID is the network-unique RT channel identifier (32 bits on the wire
// schema; the simulated Ethernet frame format keeps the paper's 16-bit
// field and is only exercised by scenarios far below that ceiling).
// core.ChannelID is an alias of this type.
type ID uint32

// Ref locates one hop of one channel on a link's task list: the channel
// and the index of the link within the channel's traversed-links sequence
// (0 = first hop; on a star, 0 = uplink and 1 = downlink).
type Ref[Ch any] struct {
	Ch  Ch
	Hop int
}

// Ops is the adapter-supplied vocabulary the kernel manipulates channels
// through. All functions must be pure with respect to the kernel's
// bookkeeping: Links must be stable for the lifetime of the channel, and
// Task must depend only on the channel's spec and current partition.
type Ops[K comparable, Ch any, P any] struct {
	// ID returns the channel's identifier.
	ID func(Ch) ID
	// UtilCP returns the channel's per-period demand C and period P; every
	// traversed link carries C/P utilization.
	UtilCP func(Ch) (c, p int64)
	// Links returns the traversed link keys in route order. Called once
	// per Add; the kernel retains the slice, so it must not be mutated.
	Links func(Ch) []K
	// Task materializes the EDF task the channel induces on its hop-th
	// traversed link, under the channel's current partition.
	Task func(ch Ch, hop int) edf.Task
	// Less is the deterministic verification order on link keys.
	Less func(a, b K) bool
	// Part snapshots the channel's current partition for the undo log.
	Part func(Ch) P
	// SetPart installs a partition on the channel (cache invalidation is
	// the kernel's job; adapters must route all repartitioning through
	// State.SetPart).
	SetPart func(Ch, P)
	// HasPart reports whether the channel already holds exactly p.
	HasPart func(Ch, P) bool
	// Validate panics when p violates the partition conditions for ch —
	// a scheme implementation bug, not an admission rejection.
	Validate func(Ch, P)
	// Clone deep-copies a channel for the clone-based reference engine.
	Clone func(Ch) Ch
}

var ratOne = big.NewRat(1, 1)

// entry is one channel plus its cached traversed-links sequence.
type entry[K comparable, Ch any] struct {
	ch    Ch
	links []K
}

// State is the generic system state SS = {N, K}: the set of currently
// active channels together with the per-link bookkeeping the admission
// hot path depends on. byLink maps every loaded link to the channel hops
// traversing it (in establishment order, the per-link restriction of the
// global order), taskCache memoizes each link's EDF task set, and utilSum
// keeps each link's exact rational utilization sum(C/P) — rational
// arithmetic is exact, so the running sum always equals a fresh summation
// bit for bit. All three are maintained incrementally by
// Add/Remove/SetPart, so TasksShared and the verification sweep never
// scan the full channel map.
//
// State is not safe for concurrent use; the surrounding controller
// serializes access.
type State[K comparable, Ch any, P any] struct {
	ops *Ops[K, Ch, P]

	channels map[ID]entry[K, Ch]
	order    []ID // insertion order, for deterministic iteration
	// stale holds IDs of removed channels whose order entry has not been
	// compacted away yet. Add consults it so that re-admitting a channel
	// under its kept ID (failure recovery) purges the old entry instead
	// of double-listing the channel in Channels().
	stale  map[ID]bool
	loads  map[K]int
	nextID ID

	byLink    map[K][]Ref[Ch]
	taskCache map[K][]edf.Task
	utilSum   map[K]*big.Rat
	// utilOver caches the exact U > 1 answer per link, refreshed whenever
	// utilSum changes — the verify sweep reads a bool instead of paying a
	// big.Rat comparison (which allocates) per link per sweep.
	utilOver map[K]bool

	// gens assigns every loaded link a generation stamp: the value of the
	// monotone genCtr at the moment the link's task-set CONTENT last
	// changed. Add/UndoAdd/Remove/SetPart bump every affected link;
	// SetPartDiff bumps only links whose materialized task actually
	// differs, which is what lets the engine's feasibility-verdict cache
	// skip links a repartition pass touched but did not move. genCtr is
	// never rolled back (an undo bumps again rather than restoring), so a
	// generation value is never reused for different content — the
	// soundness invariant the verdict cache rests on.
	genCtr uint64
	gens   map[K]uint64

	// oldTasks and diffLinks are scratch buffers for SetPartDiff.
	oldTasks  []edf.Task
	diffLinks []K
}

// NewState returns an empty state speaking the given adapter vocabulary.
func NewState[K comparable, Ch any, P any](ops *Ops[K, Ch, P]) *State[K, Ch, P] {
	return &State[K, Ch, P]{
		ops:       ops,
		channels:  make(map[ID]entry[K, Ch]),
		stale:     make(map[ID]bool),
		loads:     make(map[K]int),
		nextID:    1,
		byLink:    make(map[K][]Ref[Ch]),
		taskCache: make(map[K][]edf.Task),
		utilSum:   make(map[K]*big.Rat),
		utilOver:  make(map[K]bool),
		gens:      make(map[K]uint64),
	}
}

// bumpGen stamps a link with a fresh generation: its task-set content
// (set membership or task parameters) just changed.
func (st *State[K, Ch, P]) bumpGen(l K) {
	st.genCtr++
	st.gens[l] = st.genCtr
}

// Gen returns the link's current task-set generation stamp.
func (st *State[K, Ch, P]) Gen(l K) uint64 { return st.gens[l] }

// Len returns the number of active channels, size(K).
func (st *State[K, Ch, P]) Len() int { return len(st.channels) }

// Get returns the channel with the given ID, or the zero Ch (nil for
// pointer channel types).
func (st *State[K, Ch, P]) Get(id ID) Ch { return st.channels[id].ch }

// Has reports whether a channel with the given ID exists.
func (st *State[K, Ch, P]) Has(id ID) bool {
	_, ok := st.channels[id]
	return ok
}

// Channels returns the active channels in establishment order.
func (st *State[K, Ch, P]) Channels() []Ch {
	out := make([]Ch, 0, len(st.order))
	for _, id := range st.order {
		if e, ok := st.channels[id]; ok {
			out = append(out, e.ch)
		}
	}
	return out
}

// ChannelsOn returns the channel hops traversing a link in establishment
// order. The returned slice is the live cache — callers must not mutate
// or retain it.
func (st *State[K, Ch, P]) ChannelsOn(l K) []Ref[Ch] { return st.byLink[l] }

// LinkLoad returns LL(l): the number of channels traversing the link.
func (st *State[K, Ch, P]) LinkLoad(l K) int { return st.loads[l] }

// Links returns every link with at least one channel, in the
// deterministic verification order.
func (st *State[K, Ch, P]) Links() []K {
	out := make([]K, 0, len(st.loads))
	for l := range st.loads {
		out = append(out, l)
	}
	st.sortLinks(out)
	return out
}

func (st *State[K, Ch, P]) sortLinks(ls []K) {
	sort.Slice(ls, func(i, j int) bool { return st.ops.Less(ls[i], ls[j]) })
}

// NextID returns the next channel ID the allocator will try.
func (st *State[K, Ch, P]) NextID() ID { return st.nextID }

// SetNextID positions the ID allocator (snapshot restore, tests).
func (st *State[K, Ch, P]) SetNextID(id ID) { st.nextID = id }

// OrderLen returns the length of the internal insertion-order slice,
// including tombstones not yet compacted (tests).
func (st *State[K, Ch, P]) OrderLen() int { return len(st.order) }

// AllocID returns the next unused network-unique channel ID. IDs wrap at
// 32 bits (the width of the RT channel ID field on the wire schema);
// AllocID skips IDs still in use. It panics when all 2^32-1 IDs are
// active, which a real switch could not handle either.
func (st *State[K, Ch, P]) AllocID() ID {
	for i := uint64(0); i < 1<<32; i++ {
		id := st.nextID
		st.nextID++
		if st.nextID == 0 { // reserve 0 as "unset" (request frames carry 0)
			st.nextID = 1
		}
		if _, used := st.channels[id]; !used && id != 0 {
			return id
		}
	}
	panic("admit: all RT channel IDs in use")
}

// Add inserts a channel and updates link loads and per-link caches. The
// channel's ID must be unused.
func (st *State[K, Ch, P]) Add(ch Ch) {
	id := st.ops.ID(ch)
	if _, dup := st.channels[id]; dup {
		panic(fmt.Sprintf("admit: duplicate channel ID %d", id))
	}
	if st.stale[id] {
		// The channel lived before under this ID and its order entry is
		// still pending compaction — purge it, or the entry would come
		// alive again and Channels() would list the channel twice.
		for i, oid := range st.order {
			if oid == id {
				st.order = append(st.order[:i], st.order[i+1:]...)
				break
			}
		}
		delete(st.stale, id)
	}
	links := st.ops.Links(ch)
	st.channels[id] = entry[K, Ch]{ch: ch, links: links}
	st.order = append(st.order, id)
	c, p := st.ops.UtilCP(ch)
	for hop, l := range links {
		st.loads[l]++
		st.byLink[l] = append(st.byLink[l], Ref[Ch]{Ch: ch, Hop: hop})
		delete(st.taskCache, l)
		st.bumpGen(l)
		st.addUtil(l, c, p)
	}
}

// addUtil folds one channel's C/P into a link's running utilization sum.
func (st *State[K, Ch, P]) addUtil(l K, c, p int64) {
	u := st.utilSum[l]
	if u == nil {
		u = new(big.Rat)
		st.utilSum[l] = u
	}
	u.Add(u, new(big.Rat).SetFrac64(c, p))
	st.utilOver[l] = u.Cmp(ratOne) > 0
}

// subUtil removes one channel's C/P from a link's running sum, dropping
// the entry when the link is no longer loaded.
func (st *State[K, Ch, P]) subUtil(l K, c, p int64) {
	if st.loads[l] == 0 {
		delete(st.utilSum, l)
		delete(st.utilOver, l)
		return
	}
	if u := st.utilSum[l]; u != nil {
		u.Sub(u, new(big.Rat).SetFrac64(c, p))
		st.utilOver[l] = u.Cmp(ratOne) > 0
	}
}

// UtilExceedsOne reports the exact first-constraint answer (U > 1) for a
// link from the incrementally maintained sum.
func (st *State[K, Ch, P]) UtilExceedsOne(l K) bool {
	return st.utilOver[l]
}

// UndoAdd reverses the most recent Add exactly: the channel must be the
// last one added and still present. Unlike Remove it restores the order
// slice verbatim, so a rolled-back tentative admission leaves no trace.
func (st *State[K, Ch, P]) UndoAdd(ch Ch) {
	id := st.ops.ID(ch)
	if len(st.order) == 0 || st.order[len(st.order)-1] != id {
		panic(fmt.Sprintf("admit: UndoAdd of channel %d out of order", id))
	}
	e := st.channels[id]
	delete(st.channels, id)
	st.order = st.order[:len(st.order)-1]
	c, p := st.ops.UtilCP(ch)
	for _, l := range e.links {
		if st.loads[l]--; st.loads[l] == 0 {
			delete(st.loads, l)
		}
		refs := st.byLink[l]
		if len(refs) == 1 {
			delete(st.byLink, l)
		} else {
			st.byLink[l] = refs[:len(refs)-1]
		}
		delete(st.taskCache, l)
		st.bumpGen(l)
		st.subUtil(l, c, p)
	}
}

// Remove deletes a channel and updates link loads and per-link caches. It
// reports whether the channel existed.
func (st *State[K, Ch, P]) Remove(id ID) bool {
	e, ok := st.channels[id]
	if !ok {
		return false
	}
	delete(st.channels, id)
	c, p := st.ops.UtilCP(e.ch)
	for _, l := range e.links {
		if st.loads[l]--; st.loads[l] == 0 {
			delete(st.loads, l)
		}
		refs := st.byLink[l]
		kept := refs[:0]
		for _, r := range refs {
			if st.ops.ID(r.Ch) != id {
				kept = append(kept, r)
			}
		}
		if len(kept) == 0 {
			delete(st.byLink, l)
		} else {
			st.byLink[l] = kept
		}
		delete(st.taskCache, l)
		st.bumpGen(l)
		st.subUtil(l, c, p)
	}
	// Compact the order slice lazily: rebuild when over half are gone.
	st.stale[id] = true
	if len(st.order) >= 2*len(st.channels)+8 {
		kept := st.order[:0]
		for _, oid := range st.order {
			if _, alive := st.channels[oid]; alive {
				kept = append(kept, oid)
			}
		}
		st.order = kept
		clear(st.stale)
	}
	return true
}

// SetPart installs a new partition on a channel and invalidates the task
// caches (and generation stamps) of all its links, whether or not the new
// partition actually moves them. All repartitioning goes through here or
// SetPartDiff so the caches can never go stale.
func (st *State[K, Ch, P]) SetPart(ch Ch, p P) {
	st.ops.SetPart(ch, p)
	for _, l := range st.channels[st.ops.ID(ch)].links {
		delete(st.taskCache, l)
		st.bumpGen(l)
	}
}

// SetPartDiff installs a new partition on a channel that already holds a
// valid one and invalidates only the links whose materialized EDF task
// actually changed, leaving the task cache and generation stamp of
// content-stable links intact. A repartition pass frequently recomputes
// identical deadline budgets for most hops (the scheme is a function of
// per-link load, and most loads did not change); keeping their
// generations lets the engine's verdict cache skip re-sweeping them.
//
// The returned slice lists the content-changed links in hop order; it is
// a scratch buffer invalidated by the next SetPartDiff call. The channel
// MUST already hold a partition under which Ops.Task is well-defined for
// every hop — use SetPart for freshly constructed channels.
func (st *State[K, Ch, P]) SetPartDiff(ch Ch, p P) []K {
	links := st.channels[st.ops.ID(ch)].links
	old := st.oldTasks[:0]
	for hop := range links {
		old = append(old, st.ops.Task(ch, hop))
	}
	st.oldTasks = old
	st.ops.SetPart(ch, p)
	diff := st.diffLinks[:0]
	for hop, l := range links {
		if st.ops.Task(ch, hop) != old[hop] {
			delete(st.taskCache, l)
			st.bumpGen(l)
			diff = append(diff, l)
		}
	}
	st.diffLinks = diff
	return diff
}

// LinksOf returns the cached traversed-links sequence of an active
// channel. The returned slice must not be mutated.
func (st *State[K, Ch, P]) LinksOf(ch Ch) []K {
	return st.channels[st.ops.ID(ch)].links
}

// TasksOn derives the periodic task set of one link pseudo-processor. The
// returned slice is freshly allocated; the internal cache backing it is
// maintained incrementally.
func (st *State[K, Ch, P]) TasksOn(l K) []edf.Task {
	cached := st.TasksShared(l)
	if cached == nil {
		return nil
	}
	return append([]edf.Task(nil), cached...)
}

// TasksShared returns the memoized task set of a link, rebuilding it from
// the per-link channel list when stale. The returned slice is shared —
// internal read-only callers (the feasibility test) use it to avoid the
// defensive copy TasksOn makes.
func (st *State[K, Ch, P]) TasksShared(l K) []edf.Task {
	if tasks, ok := st.taskCache[l]; ok {
		return tasks
	}
	refs := st.byLink[l]
	if len(refs) == 0 {
		return nil
	}
	tasks := make([]edf.Task, 0, len(refs))
	for _, r := range refs {
		tasks = append(tasks, st.ops.Task(r.Ch, r.Hop))
	}
	st.taskCache[l] = tasks
	return tasks
}

// MeanLinkUtilization returns the mean of the per-link task-set
// utilizations over all loaded links — a coarse load metric used in
// reports. Returns 0 for an empty state.
//
// The sum is taken directly over the per-link channel lists (same order,
// bit-identical to edf.UtilizationFloat over the link's task set) rather
// than through the lazy task cache, so this query never mutates the
// state — rtether.Network serves it under a read lock.
func (st *State[K, Ch, P]) MeanLinkUtilization() float64 {
	links := st.Links()
	if len(links) == 0 {
		return 0
	}
	var sum float64
	for _, l := range links {
		var u float64
		for _, r := range st.byLink[l] {
			c, p := st.ops.UtilCP(r.Ch)
			u += float64(c) / float64(p)
		}
		sum += u
	}
	return sum / float64(len(links))
}

// Clone returns a deep copy of the state sharing no mutable data with the
// original. Channels are copied through Ops.Clone so tentative partitions
// can be applied without touching the committed state; the task cache
// starts empty and is rebuilt lazily.
func (st *State[K, Ch, P]) Clone() *State[K, Ch, P] {
	cp := &State[K, Ch, P]{
		ops:       st.ops,
		channels:  make(map[ID]entry[K, Ch], len(st.channels)),
		order:     append([]ID(nil), st.order...),
		stale:     make(map[ID]bool, len(st.stale)),
		loads:     make(map[K]int, len(st.loads)),
		nextID:    st.nextID,
		byLink:    make(map[K][]Ref[Ch], len(st.byLink)),
		taskCache: make(map[K][]edf.Task),
		utilSum:   make(map[K]*big.Rat, len(st.utilSum)),
		utilOver:  make(map[K]bool, len(st.utilOver)),
		genCtr:    st.genCtr,
		gens:      make(map[K]uint64, len(st.gens)),
	}
	for l, g := range st.gens {
		cp.gens[l] = g
	}
	for id := range st.stale {
		cp.stale[id] = true
	}
	for id, e := range st.channels {
		cp.channels[id] = entry[K, Ch]{ch: st.ops.Clone(e.ch), links: e.links}
	}
	for l, n := range st.loads {
		cp.loads[l] = n
	}
	for l, refs := range st.byLink {
		rs := make([]Ref[Ch], len(refs))
		for i, r := range refs {
			rs[i] = Ref[Ch]{Ch: cp.channels[st.ops.ID(r.Ch)].ch, Hop: r.Hop}
		}
		cp.byLink[l] = rs
	}
	for l, u := range st.utilSum {
		cp.utilSum[l] = new(big.Rat).Set(u)
	}
	for l, over := range st.utilOver {
		cp.utilOver[l] = over
	}
	return cp
}
