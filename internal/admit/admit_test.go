package admit

import (
	"fmt"
	"testing"

	"repro/internal/edf"
)

// toyChan is a minimal channel for kernel tests: it traverses an
// arbitrary set of integer link keys and its "partition" is one shared
// per-link deadline.
type toyChan struct {
	id    ID
	c, p  int64
	links []int
	part  int64
}

var toyOps = &Ops[int, *toyChan, int64]{
	ID:     func(ch *toyChan) ID { return ch.id },
	UtilCP: func(ch *toyChan) (int64, int64) { return ch.c, ch.p },
	Links:  func(ch *toyChan) []int { return ch.links },
	Task: func(ch *toyChan, hop int) edf.Task {
		return edf.Task{C: ch.c, P: ch.p, D: ch.part}
	},
	Less:    func(a, b int) bool { return a < b },
	Part:    func(ch *toyChan) int64 { return ch.part },
	SetPart: func(ch *toyChan, p int64) { ch.part = p },
	HasPart: func(ch *toyChan, p int64) bool { return ch.part == p },
	Validate: func(ch *toyChan, p int64) {
		if p < ch.c {
			panic(fmt.Sprintf("admit_test: deadline %d below C=%d", p, ch.c))
		}
	},
	Clone: func(ch *toyChan) *toyChan {
		c := *ch
		return &c
	},
}

func newToyEngine(cfg Config) *Engine[int, *toyChan, int64] {
	cfg.Feasibility.SkipValidation = true
	return NewEngine(toyOps, cfg)
}

// constScheme partitions every channel to the given deadline.
func constScheme(d int64) Scheme[int, *toyChan, int64] {
	return Scheme[int, *toyChan, int64]{
		Partition: func(st *State[int, *toyChan, int64]) map[ID]int64 {
			parts := make(map[ID]int64, st.Len())
			for _, ch := range st.Channels() {
				parts[ch.id] = d
			}
			return parts
		},
		PartitionTouched: func(st *State[int, *toyChan, int64], touched []int) map[ID]int64 {
			parts := make(map[ID]int64)
			for _, l := range touched {
				for _, r := range st.ChannelsOn(l) {
					if r.Ch.part != d {
						parts[r.Ch.id] = d
					}
				}
			}
			return parts
		},
	}
}

func TestApplyReportsChangedLinksAndIDs(t *testing.T) {
	e := newToyEngine(Config{Workers: 1})
	mk := func(links ...int) func(int, ID) *toyChan {
		return func(_ int, id ID) *toyChan {
			return &toyChan{id: id, c: 1, p: 100, links: links}
		}
	}
	schemes := []Scheme[int, *toyChan, int64]{constScheme(10)}
	if _, rej := e.Admit(1, mk(1, 2), schemes); rej != nil {
		t.Fatalf("admit: %v", rej.Result)
	}
	if _, rej := e.Admit(1, mk(3, 4), schemes); rej != nil {
		t.Fatalf("admit: %v", rej.Result)
	}
	// A repartition to the same value must report nothing as changed.
	if _, rej := e.Admit(1, mk(1, 3), schemes); rej != nil {
		t.Fatalf("admit: %v", rej.Result)
	}
	ids := e.Repartitioned()
	if len(ids) != 1 || ids[0] != 3 {
		t.Fatalf("Repartitioned = %v, want just the new channel 3", ids)
	}
}

func TestApplyPanicsOnMissingPartition(t *testing.T) {
	e := newToyEngine(Config{FullRecheck: true, Workers: 1})
	empty := []Scheme[int, *toyChan, int64]{{
		Partition: func(*State[int, *toyChan, int64]) map[ID]int64 { return nil },
	}}
	defer func() {
		if recover() == nil {
			t.Error("missing partition did not panic")
		}
	}()
	e.Admit(1, func(_ int, id ID) *toyChan {
		return &toyChan{id: id, c: 1, p: 100, links: []int{1}}
	}, empty)
}

func TestApplyPanicsOnInvalidPartition(t *testing.T) {
	e := newToyEngine(Config{Workers: 1})
	bad := []Scheme[int, *toyChan, int64]{constScheme(1)} // below C=2
	defer func() {
		if recover() == nil {
			t.Error("invalid partition did not panic")
		}
	}()
	e.Admit(1, func(_ int, id ID) *toyChan {
		return &toyChan{id: id, c: 2, p: 100, links: []int{1}}
	}, bad)
}

func TestDedupKeysPreservesOrder(t *testing.T) {
	got := dedupKeys([]int{5, 3, 5, 1, 3, 5, 1})
	want := []int{5, 3, 1}
	if len(got) != len(want) {
		t.Fatalf("dedupKeys = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dedupKeys = %v, want %v", got, want)
		}
	}
	long := make([]int, 100)
	for i := range long {
		long[i] = i % 7
	}
	if got := dedupKeys(long); len(got) != 7 || got[0] != 0 || got[6] != 6 {
		t.Fatalf("dedupKeys(long) = %v", got)
	}
}

// TestParallelSweepDeterministic drives one saturating batch through
// engines differing only in worker count: the verdict, the named link
// (lowest sorted index wins) and the LinksChecked accounting must be
// identical, sequential or parallel.
func TestParallelSweepDeterministic(t *testing.T) {
	// 64 links, each loaded with two channels; the partition leaves
	// high-numbered links infeasible (two C=2 tasks against a deadline of
	// 3 violate the demand criterion while staying individually valid),
	// so the sweep has many failures to pick the deterministic first
	// from.
	build := func(workers int) (*Engine[int, *toyChan, int64], *Rejection[int]) {
		e := newToyEngine(Config{Workers: workers})
		scheme := Scheme[int, *toyChan, int64]{
			Partition: func(st *State[int, *toyChan, int64]) map[ID]int64 {
				parts := make(map[ID]int64)
				for _, ch := range st.Channels() {
					d := int64(10)
					if ch.links[0] >= 40 { // links 40+ get an infeasible split
						d = 3
					}
					parts[ch.id] = d
				}
				return parts
			},
		}
		scheme.PartitionTouched = func(st *State[int, *toyChan, int64], touched []int) map[ID]int64 {
			return scheme.Partition(st)
		}
		mk := func(i int, id ID) *toyChan {
			return &toyChan{id: id, c: 2, p: 100, links: []int{i % 64}}
		}
		_, rej := e.Admit(128, mk, []Scheme[int, *toyChan, int64]{scheme})
		return e, rej
	}

	e1, rej1 := build(1)
	e8, rej8 := build(8)
	if rej1 == nil || rej8 == nil {
		t.Fatal("saturating batch was not rejected")
	}
	if rej1.Link != rej8.Link {
		t.Fatalf("rejecting link differs: workers=1 → %d, workers=8 → %d", rej1.Link, rej8.Link)
	}
	if rej1.Link != 40 {
		t.Fatalf("rejecting link = %d, want lowest failing sorted index 40", rej1.Link)
	}
	if rej1.Result.String() != rej8.Result.String() {
		t.Fatalf("diagnostics differ:\n  workers=1: %v\n  workers=8: %v", rej1.Result, rej8.Result)
	}
	if e1.LinksChecked() != e8.LinksChecked() {
		t.Fatalf("LinksChecked differs: workers=1 → %d, workers=8 → %d",
			e1.LinksChecked(), e8.LinksChecked())
	}
	if got, want := e1.LinksChecked(), 41; got != want {
		t.Fatalf("LinksChecked = %d, want %d (failing index + 1)", got, want)
	}
	// Rejection left no trace on either engine.
	if e1.State().Len() != 0 || e8.State().Len() != 0 {
		t.Fatal("rejected batch left channels committed")
	}
}

// TestParallelSweepAcceptsIdentically verifies a feasible large batch is
// accepted with identical committed state for every worker count.
func TestParallelSweepAcceptsIdentically(t *testing.T) {
	stateKey := func(e *Engine[int, *toyChan, int64]) string {
		s := ""
		for _, ch := range e.State().Channels() {
			s += fmt.Sprintf("%d:%d:%v;", ch.id, ch.part, ch.links)
		}
		return s
	}
	build := func(workers int) *Engine[int, *toyChan, int64] {
		e := newToyEngine(Config{Workers: workers})
		mk := func(i int, id ID) *toyChan {
			return &toyChan{id: id, c: 1, p: 50, links: []int{i % 32, 32 + i%16}}
		}
		if _, rej := e.Admit(128, mk, []Scheme[int, *toyChan, int64]{constScheme(25)}); rej != nil {
			t.Fatalf("workers=%d: feasible batch rejected: %v", workers, rej.Result)
		}
		return e
	}
	e1, e8 := build(1), build(8)
	if stateKey(e1) != stateKey(e8) {
		t.Fatalf("committed states diverge:\n%s\nvs\n%s", stateKey(e1), stateKey(e8))
	}
	if e1.LinksChecked() != e8.LinksChecked() {
		t.Fatalf("LinksChecked differs: %d vs %d", e1.LinksChecked(), e8.LinksChecked())
	}
}
