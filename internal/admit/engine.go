package admit

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/edf"
)

// Rejection reports which link failed the admission test and why. The
// adapters wrap it into their public error types (core.RejectionError,
// topo.RejectionError).
type Rejection[K comparable] struct {
	Link   K
	Result edf.Result
}

// Scheme is one deadline partitioning scheme as the kernel sees it: a
// full-state partition function (the reference engine's view) and,
// optionally, an incremental one. A nil PartitionTouched marks the scheme
// non-incremental, forcing the clone-based reference engine.
//
// PartitionTouched must obey the incremental contract: for each returned
// channel the value must equal what Partition would return on the same
// state, and every channel omitted must already hold exactly that value.
type Scheme[K comparable, Ch any, P any] struct {
	Partition        func(st *State[K, Ch, P]) map[ID]P
	PartitionTouched func(st *State[K, Ch, P], touched []K) map[ID]P
}

// Config tunes an Engine.
type Config struct {
	// Feasibility passes through to the per-link EDF test.
	Feasibility edf.Options
	// FullRecheck forces every loaded link to be re-verified on each
	// mutation and disables the copy-on-write engine — the
	// ablation/belt-and-braces reference mode. It also disables the
	// feasibility-verdict cache.
	FullRecheck bool
	// NoSweepCache disables the generation-keyed feasibility-verdict
	// cache, forcing every swept link through the full EDF test. Decisions
	// are identical with the cache on or off (the equivalence replays pin
	// this); the switch exists for ablation benchmarks and as a
	// belt-and-braces escape hatch.
	NoSweepCache bool
	// Workers bounds the verification worker pool; 0 means
	// runtime.GOMAXPROCS(0), 1 forces the sequential sweep. Decisions,
	// diagnostics and the LinksChecked accounting are identical for every
	// worker count.
	Workers int
}

// minParallelLinks is the sweep size below which verification stays
// sequential: spawning workers for the one-or-two changed links of a
// single establishment (or the handful of hops of one routed channel)
// costs more than the tests themselves.
const minParallelLinks = 8

// Engine owns a State and runs admission decisions against it: the
// copy-on-write delta engine when every scheme is incremental, the
// clone-everything reference engine otherwise. Both make bit-identical
// decisions; the equivalence is proven by the adapters' replay suites.
//
// Engine is not safe for concurrent use (the verification worker pool is
// internal to a single decision); the public rtether.Network serializes
// access.
type Engine[K comparable, Ch any, P any] struct {
	ops     *Ops[K, Ch, P]
	cfg     Config
	workers int
	state   *State[K, Ch, P]

	linksChecked  int
	repartitions  int
	repartitioned []ID

	// staleParts holds the channels whose committed partition was kept
	// back by a Release whose repartition failed verification. Their
	// vectors differ from what the scheme's Partition would compute, so
	// the incremental engine folds their links into every later touched
	// set — the clone engine's full Partition pass heals them implicitly,
	// and decision equivalence requires the delta engine to do the same.
	staleParts map[ID]struct{}

	// Feasibility-verdict cache: feasGen[l] is the generation stamp
	// (State.Gen) at which link l was last PROVEN feasible. A sweep skips
	// any link whose current generation still equals its proven one — the
	// link's task-set content has not changed, so the cached verdict
	// stands. The cache is consulted and updated only for sweeps over the
	// live committed state (st == e.state): tentative clones fork the
	// generation counter, so verdicts recorded against a discarded clone
	// could collide with later live generations. Generation stamps are
	// never reused for different content (State.bumpGen is monotone and
	// undo bumps again rather than restoring), which makes a stamp match
	// a sound proof of content equality.
	cacheOn    bool
	feasGen    map[K]uint64
	sweepSkips int

	// sweepNs accumulates wall time spent inside verification sweeps
	// (sequential or parallel, cache hits included). It is observability
	// accounting only — never part of a decision — so unlike the
	// deterministic counters above it varies run to run.
	sweepNs int64

	// slackHist[l] is the MinSlack (tightest demand-criterion margin) the
	// link showed at its most recent COMMITTED sweep. Sweeps visit links
	// in ascending recorded slack — historically tightest first — so an
	// infeasible repartition fails as early as possible. Only committed
	// sweeps update the history: every engine flavor (delta, clone,
	// FullRecheck, cache on or off) then holds bit-identical histories
	// after identical decision sequences, which keeps the sweep order —
	// and therefore the named rejection link — identical across them.
	slackHist map[K]int64

	// Reusable sweep buffers: with these plus the per-worker Scratch
	// arenas the steady-state sequential verify sweep allocates nothing.
	scratch       edf.Scratch
	workerScratch []edf.Scratch
	touchBuf      []K
	sweepLinks    []K
	sweepSkip     []bool
	sweepTasks    [][]edf.Task
	sweepExceeds  []bool
	exceedsBuf    bool
	sweepResults  []edf.Result
	sweepOK       int // feasible prefix length of the last sweep
	freshIDs      map[ID]struct{}
}

// NewEngine returns an engine over an empty state.
func NewEngine[K comparable, Ch any, P any](ops *Ops[K, Ch, P], cfg Config) *Engine[K, Ch, P] {
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Engine[K, Ch, P]{
		ops:           ops,
		cfg:           cfg,
		workers:       workers,
		state:         NewState(ops),
		staleParts:    make(map[ID]struct{}),
		cacheOn:       !cfg.FullRecheck && !cfg.NoSweepCache,
		feasGen:       make(map[K]uint64),
		slackHist:     make(map[K]int64),
		workerScratch: make([]edf.Scratch, workers),
		freshIDs:      make(map[ID]struct{}),
	}
}

// State returns the live committed state. Callers must treat it as
// read-only.
func (e *Engine[K, Ch, P]) State() *State[K, Ch, P] { return e.state }

// ReplaceState swaps in a state assembled elsewhere (snapshot restore).
// The verdict cache and slack history are reset: they describe the old
// state's generations.
func (e *Engine[K, Ch, P]) ReplaceState(st *State[K, Ch, P]) {
	e.state = st
	clear(e.feasGen)
	clear(e.slackHist)
}

// LinksChecked returns the cumulative number of per-link feasibility
// tests the engine accounts for. The count is deterministic and
// independent of the worker count and of the verdict cache: a cache hit
// counts as a check (the cached verdict answers the same question), so
// cached and uncached engines report identical counts.
func (e *Engine[K, Ch, P]) LinksChecked() int { return e.linksChecked }

// SweepSkips returns the cumulative number of per-link feasibility tests
// the verdict cache answered without running the EDF analysis.
func (e *Engine[K, Ch, P]) SweepSkips() int { return e.sweepSkips }

// SweepNs returns the cumulative wall-clock nanoseconds spent in
// verification sweeps. Unlike LinksChecked this is measured, not
// deterministic; it exists for the observability surface
// (rtether.AdmissionStats, /metrics), never for decisions.
func (e *Engine[K, Ch, P]) SweepNs() int64 { return e.sweepNs }

// Repartitions returns the cumulative number of repartition passes the
// engine has run: one per scheme attempted per admission decision (an
// Admit covering a whole batch counts once per scheme, which is what
// makes batch admission scale) plus one per Release that repartitioned
// the remaining channels. The count is deterministic and identical for
// the delta and clone engines.
func (e *Engine[K, Ch, P]) Repartitions() int { return e.repartitions }

// Repartitioned returns the IDs (ascending) of the channels whose
// partitions changed in the last successful Admit or Release —
// establishments include the new channels. The slice is invalidated by
// the next mutation.
func (e *Engine[K, Ch, P]) Repartitioned() []ID { return e.repartitioned }

// incremental reports whether the copy-on-write engine may run: every
// scheme must be incremental and FullRecheck (which wants to see the
// whole tentative state) must be off.
func (e *Engine[K, Ch, P]) incremental(schemes []Scheme[K, Ch, P]) bool {
	if e.cfg.FullRecheck {
		return false
	}
	for _, s := range schemes {
		if s.PartitionTouched == nil {
			return false
		}
	}
	return true
}

// Admit runs one admission decision for a batch of n new channels:
// mk(i, id) constructs the i-th channel with its allocated ID (the
// adapter has validated and routed the specs already). The schemes are
// tried in order — the paper's fallback search — and the first whose
// tentative system passes verification commits. On rejection the
// committed state is untouched (bit for bit, including the ID allocator)
// and the first scheme's rejection is returned.
func (e *Engine[K, Ch, P]) Admit(n int, mk func(i int, id ID) Ch, schemes []Scheme[K, Ch, P]) ([]Ch, *Rejection[K]) {
	if e.incremental(schemes) {
		return e.admitDelta(n, mk, schemes)
	}
	return e.admitClone(n, mk, schemes)
}

// admitClone is the clone-based reference engine: build a full tentative
// copy of the state per scheme, repartition everything, verify, and swap
// the state pointer on acceptance. It remains the reference path for
// FullRecheck mode and for custom non-incremental scheme implementations.
func (e *Engine[K, Ch, P]) admitClone(n int, mk func(i int, id ID) Ch, schemes []Scheme[K, Ch, P]) ([]Ch, *Rejection[K]) {
	var firstRej *Rejection[K]
	for _, scheme := range schemes {
		tentative := e.state.Clone()
		chs := make([]Ch, n)
		clear(e.freshIDs)
		for i := 0; i < n; i++ {
			ch := mk(i, tentative.AllocID())
			tentative.Add(ch)
			chs[i] = ch
			e.freshIDs[e.ops.ID(ch)] = struct{}{}
		}

		e.repartitions++
		parts := scheme.Partition(tentative)
		changed, changedIDs := e.apply(tentative, parts, e.freshIDs)

		rej := e.verify(tentative, changed)
		if rej == nil {
			e.state = tentative
			e.repartitioned = changedIDs
			clear(e.staleParts) // full Partition healed any kept-back vectors
			e.commitSlack()
			return chs, nil
		}
		if firstRej == nil {
			firstRej = rej
		}
	}
	return nil, firstRej
}

// admitDelta is the copy-on-write engine: mutate the live state
// tentatively (add the channels, repartition only what the scheme says
// can have moved), verify only the changed links, and roll everything
// back on rejection. The ID allocator is restored too, so a rejected
// request leaves no observable trace — decisions and committed states
// are bit-identical to admitClone.
func (e *Engine[K, Ch, P]) admitDelta(n int, mk func(i int, id ID) Ch, schemes []Scheme[K, Ch, P]) ([]Ch, *Rejection[K]) {
	var firstRej *Rejection[K]
	for _, scheme := range schemes {
		savedNext := e.state.nextID
		chs := make([]Ch, n)
		touched := e.touchBuf[:0]
		clear(e.freshIDs)
		for i := 0; i < n; i++ {
			ch := mk(i, e.state.AllocID())
			e.state.Add(ch)
			chs[i] = ch
			touched = append(touched, e.state.LinksOf(ch)...)
			e.freshIDs[e.ops.ID(ch)] = struct{}{}
		}
		touched = e.withStaleLinks(touched)
		e.touchBuf = touched[:0]
		touched = dedupKeys(touched)

		e.repartitions++
		parts := scheme.PartitionTouched(e.state, touched)
		undo, changed, changedIDs := e.applyDelta(e.state, parts, e.freshIDs)

		rej := e.verify(e.state, changed)
		if rej == nil {
			e.repartitioned = changedIDs
			clear(e.staleParts) // touched covered every stale channel; all healed
			e.commitSlack()
			return chs, nil
		}
		e.rollback(e.state, undo)
		for i := n - 1; i >= 0; i-- {
			e.state.UndoAdd(chs[i])
		}
		e.state.nextID = savedNext
		if firstRej == nil {
			firstRej = rej
		}
	}
	return nil, firstRej
}

// dedupKeys removes duplicate link keys preserving first-occurrence
// order. A batch of thousands of channels names the same few trunk links
// over and over; scanning each link's channel list once instead of once
// per occurrence keeps the incremental repartition O(sum of link loads)
// rather than O(batch x load). Scheme results are unaffected — the
// incremental contract makes PartitionTouched a pure function of the
// touched link set.
func dedupKeys[K comparable](keys []K) []K {
	if len(keys) <= 8 {
		out := keys[:0:0]
		for _, k := range keys {
			dup := false
			for _, seen := range out {
				if seen == k {
					dup = true
					break
				}
			}
			if !dup {
				out = append(out, k)
			}
		}
		return out
	}
	seen := make(map[K]struct{}, len(keys))
	out := make([]K, 0, len(keys))
	for _, k := range keys {
		if _, dup := seen[k]; dup {
			continue
		}
		seen[k] = struct{}{}
		out = append(out, k)
	}
	return out
}

// Release tears down a channel. The remaining channels are repartitioned
// (a scheme is a function of the system state); in the unlikely event
// that repartitioning a smaller system makes some link infeasible, the
// previous partitions are kept — removing load can never invalidate the
// schedule under unchanged partitions. Kept-back channels are recorded
// as stale so later incremental decisions widen their touched sets to
// match the reference engine (see staleParts). It reports whether the
// channel existed.
func (e *Engine[K, Ch, P]) Release(id ID, scheme Scheme[K, Ch, P]) bool {
	entry, ok := e.state.channels[id]
	if !ok {
		return false
	}
	if scheme.PartitionTouched != nil && !e.cfg.FullRecheck {
		e.state.Remove(id)
		delete(e.staleParts, id)
		links := e.withStaleLinks(entry.links)
		links = dedupKeys(links)
		e.repartitions++
		parts := scheme.PartitionTouched(e.state, links)
		undo, changed, changedIDs := e.applyDelta(e.state, parts, nil)
		if rej := e.verify(e.state, changed); rej != nil {
			e.rollback(e.state, undo)
			e.markStale(changedIDs)
			changedIDs = nil
		} else {
			clear(e.staleParts)
			e.commitSlack()
		}
		e.repartitioned = changedIDs
		return true
	}

	next := e.state.Clone()
	next.Remove(id)

	repart := next.Clone()
	e.repartitions++
	parts := scheme.Partition(repart)
	changed, changedIDs := e.apply(repart, parts, nil)
	if rej := e.verify(repart, changed); rej == nil {
		e.state = repart
		e.repartitioned = changedIDs
		clear(e.staleParts)
		e.commitSlack()
	} else {
		e.state = next
		e.repartitioned = nil
		e.markStale(changedIDs)
	}
	return true
}

// markStale replaces the stale set with the channels whose kept-back
// partitions now differ from canonical. The repartition covered every
// previously stale channel (their links were in the touched set, or the
// pass was a full Partition), so channels outside changedIDs are
// canonical again and drop out of the set.
func (e *Engine[K, Ch, P]) markStale(changedIDs []ID) {
	clear(e.staleParts)
	for _, id := range changedIDs {
		e.staleParts[id] = struct{}{}
	}
}

// withStaleLinks widens a touched link set with the routes of every
// stale channel, so the next incremental repartition recomputes — and,
// where the new values stick, re-verifies — exactly what the reference
// engine's full Partition pass would heal. The input slice is not
// mutated; a fresh slice is returned whenever anything is appended.
func (e *Engine[K, Ch, P]) withStaleLinks(links []K) []K {
	if len(e.staleParts) == 0 {
		return links
	}
	ids := make([]ID, 0, len(e.staleParts))
	for id := range e.staleParts {
		ids = append(ids, id)
	}
	sortIDs(ids)
	out := append([]K(nil), links...)
	for _, id := range ids {
		if ent, ok := e.state.channels[id]; ok {
			out = append(out, ent.links...)
		}
	}
	return out
}

// apply installs the computed partitions into the state's channels,
// returning the set of links whose task-set CONTENT changed and the IDs
// of the channels that moved (ascending). Channels in fresh hold no
// prior partition, so all their links count as changed; for the rest the
// per-hop diff in SetPartDiff keeps content-stable links out of the
// sweep. The reference-engine contract: a partition must be present for
// every channel. Partition validation is the adapter's Validate hook — a
// violation is a scheme implementation bug and panics.
func (e *Engine[K, Ch, P]) apply(st *State[K, Ch, P], parts map[ID]P, fresh map[ID]struct{}) (map[K]struct{}, []ID) {
	changed := make(map[K]struct{})
	var changedIDs []ID
	for _, id := range st.order {
		entry, ok := st.channels[id]
		if !ok {
			continue
		}
		ch := entry.ch
		p, ok := parts[id]
		if !ok {
			panic(fmt.Sprintf("admit: scheme returned no partition for channel %d", id))
		}
		e.ops.Validate(ch, p)
		if e.ops.HasPart(ch, p) {
			continue
		}
		changedIDs = append(changedIDs, id)
		if _, isFresh := fresh[id]; isFresh {
			st.SetPart(ch, p)
			for _, l := range entry.links {
				changed[l] = struct{}{}
			}
		} else {
			for _, l := range st.SetPartDiff(ch, p) {
				changed[l] = struct{}{}
			}
		}
	}
	sortIDs(changedIDs)
	return changed, changedIDs
}

// partUndo records one channel's previous partition so a tentative
// repartition can be rolled back in place.
type partUndo[Ch any, P any] struct {
	ch  Ch
	old P
}

// applyDelta installs the partitions of an incremental repartition
// directly into the live state, returning an undo log (for rollback on
// rejection), the set of links whose task-set content changed, and the
// IDs of the channels that moved (ascending). Channels absent from parts
// are untouched by contract — an incremental scheme covers every channel
// that can have moved. fresh marks channels with no prior partition
// (establishment batches); nil means none (release).
func (e *Engine[K, Ch, P]) applyDelta(st *State[K, Ch, P], parts map[ID]P, fresh map[ID]struct{}) ([]partUndo[Ch, P], map[K]struct{}, []ID) {
	var undo []partUndo[Ch, P]
	changed := make(map[K]struct{})
	var changedIDs []ID
	for id, p := range parts {
		entry, ok := st.channels[id]
		if !ok {
			panic(fmt.Sprintf("admit: scheme returned a partition for unknown channel %d", id))
		}
		ch := entry.ch
		e.ops.Validate(ch, p)
		if e.ops.HasPart(ch, p) {
			continue
		}
		undo = append(undo, partUndo[Ch, P]{ch: ch, old: e.ops.Part(ch)})
		changedIDs = append(changedIDs, id)
		// The changed (= to-sweep) set is channel-granular: every link of
		// every repartitioned channel, exactly as the reference engine
		// sweeps it. The generation bumps underneath are finer: for a
		// pre-existing channel SetPartDiff stamps only the hops whose
		// materialized task actually moved, which is what lets the
		// verdict cache skip the links a repartition pass touched but did
		// not change — without ever shrinking the swept set itself, so
		// cache on, cache off and the reference engine all sweep the same
		// links in the same order.
		if _, isFresh := fresh[id]; isFresh {
			st.SetPart(ch, p) // no valid prior partition to diff against
		} else {
			st.SetPartDiff(ch, p)
		}
		for _, l := range entry.links {
			changed[l] = struct{}{}
		}
	}
	sortIDs(changedIDs)
	return undo, changed, changedIDs
}

// rollback restores the previous partitions recorded by applyDelta.
// SetPart (not SetPartDiff) on purpose: it bumps every affected link's
// generation, invalidating any verdict the failed attempt recorded.
func (e *Engine[K, Ch, P]) rollback(st *State[K, Ch, P], undo []partUndo[Ch, P]) {
	for _, u := range undo {
		st.SetPart(u.ch, u.old)
	}
}

func sortIDs(ids []ID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

// verify tests feasibility of the changed links — every loaded link under
// FullRecheck — ordered by historically tightest slack first (ties: the
// adapter's deterministic link order), so a repartition that breaks
// something fails as early in the sweep as possible. Links whose task-set
// content did not change were feasible at the previous commit and cannot
// have become infeasible, which is what makes the restriction to the
// changed set decision-preserving; the slack history is identical across
// engine flavors (it advances only on commits), which makes the order —
// and therefore the first failure — identical too, regardless of worker
// count or cache mode.
func (e *Engine[K, Ch, P]) verify(st *State[K, Ch, P], changed map[K]struct{}) *Rejection[K] {
	sweepStart := time.Now()
	links := e.sweepLinks[:0]
	if e.cfg.FullRecheck {
		for l := range st.loads {
			links = append(links, l)
		}
	} else {
		for l := range changed {
			links = append(links, l)
		}
	}
	slices.SortFunc(links, func(a, b K) int {
		sa, oka := e.slackHist[a]
		if !oka {
			sa = math.MinInt64 // no history: assume tightest, sweep first
		}
		sb, okb := e.slackHist[b]
		if !okb {
			sb = math.MinInt64
		}
		switch {
		case sa < sb:
			return -1
		case sa > sb:
			return 1
		case e.ops.Less(a, b):
			return -1
		case e.ops.Less(b, a):
			return 1
		}
		return 0
	})
	e.sweepLinks = links

	// Verdict cache: a link whose generation still equals the one it was
	// last proven feasible at cannot have changed content — skip the test.
	useCache := e.cacheOn && st == e.state
	skip := growBuf(e.sweepSkip, len(links))
	live := 0
	for i, l := range links {
		skip[i] = false
		if useCache {
			if g, ok := e.feasGen[l]; ok && g == st.gens[l] {
				skip[i] = true
				e.sweepSkips++
				continue
			}
		}
		live++
	}
	e.sweepSkip = skip

	var checked int
	var rej *Rejection[K]
	if e.workers > 1 && live >= minParallelLinks {
		checked, rej = e.sweepParallel(st, links, skip)
	} else {
		checked, rej = e.sweepSequential(st, links, skip)
	}
	e.linksChecked += checked
	e.sweepOK = checked
	if rej != nil {
		e.sweepOK = checked - 1
	}
	if useCache {
		// Record fresh proofs for the deterministic feasible prefix. Sound
		// even if this decision later rolls back: rollback bumps every
		// swept link's generation, orphaning these entries harmlessly.
		for i := 0; i < e.sweepOK; i++ {
			if !skip[i] {
				e.feasGen[links[i]] = st.gens[links[i]]
			}
		}
	}
	e.sweepNs += time.Since(sweepStart).Nanoseconds()
	return rej
}

// commitSlack folds the last sweep's measured slacks into the history.
// Called exactly when the decision the sweep verified commits; failed
// attempts record nothing, keeping the history a pure function of the
// committed decision sequence (see slackHist).
func (e *Engine[K, Ch, P]) commitSlack() {
	for i := 0; i < e.sweepOK; i++ {
		if e.sweepSkip[i] {
			continue // cache hit: content unchanged, recorded slack still exact
		}
		e.slackHist[e.sweepLinks[i]] = e.sweepResults[i].MinSlack
	}
}

// growBuf returns buf resized to n, reallocating only on growth.
func growBuf[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// sweepSequential checks the links in order, stopping at the first
// failure. The first constraint (U > 1, exact) comes from the state's
// incrementally maintained per-link sum — rational arithmetic is exact,
// so the answer matches a fresh summation bit for bit.
func (e *Engine[K, Ch, P]) sweepSequential(st *State[K, Ch, P], links []K, skip []bool) (int, *Rejection[K]) {
	opts := e.cfg.Feasibility
	results := growBuf(e.sweepResults, len(links))
	e.sweepResults = results
	for i, l := range links {
		if skip[i] {
			continue
		}
		// e.exceedsBuf lives on the (heap-resident) engine: taking its
		// address does not force a per-link stack-to-heap escape the way
		// &localBool would, keeping the sequential sweep allocation-free.
		e.exceedsBuf = st.UtilExceedsOne(l)
		opts.UtilizationExceeds = &e.exceedsBuf
		res := edf.TestScratch(st.TasksShared(l), opts, &e.scratch)
		results[i] = res
		if !res.OK() {
			return i + 1, &Rejection[K]{Link: l, Result: res}
		}
	}
	return len(links), nil
}

// sweepParallel fans the per-link tests out over the worker pool. Task
// sets and utilization answers are materialized sequentially first (the
// lazy task cache is not safe for concurrent rebuilds); the workers then
// run pure feasibility tests with engine-owned per-worker scratch arenas
// (reused across flights). Workers skip links past the lowest failing
// index found so far, and the lowest failing index wins — the verdict,
// the named link and the reported check count are identical to the
// sequential sweep.
func (e *Engine[K, Ch, P]) sweepParallel(st *State[K, Ch, P], links []K, skip []bool) (int, *Rejection[K]) {
	n := len(links)
	tasks := growBuf(e.sweepTasks, n)
	exceeds := growBuf(e.sweepExceeds, n)
	results := growBuf(e.sweepResults, n)
	e.sweepTasks, e.sweepExceeds, e.sweepResults = tasks, exceeds, results
	for i, l := range links {
		if skip[i] {
			tasks[i] = nil
			continue
		}
		tasks[i] = st.TasksShared(l)
		exceeds[i] = st.UtilExceedsOne(l)
	}

	var next atomic.Int64
	var minFail atomic.Int64
	minFail.Store(int64(n))

	workers := e.workers
	if workers > n {
		workers = n
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(scratch *edf.Scratch) {
			defer wg.Done()
			opts := e.cfg.Feasibility
			for {
				i := next.Add(1) - 1
				// next is monotone: once i passes the lowest known
				// failure nothing this worker could pick up can matter.
				if i >= int64(n) || i >= minFail.Load() {
					return
				}
				if skip[i] {
					continue
				}
				opts.UtilizationExceeds = &exceeds[i]
				res := edf.TestScratch(tasks[i], opts, scratch)
				results[i] = res
				if !res.OK() {
					for {
						cur := minFail.Load()
						if i >= cur || minFail.CompareAndSwap(cur, i) {
							break
						}
					}
				}
			}
		}(&e.workerScratch[w])
	}
	wg.Wait()

	if f := minFail.Load(); f < int64(n) {
		return int(f) + 1, &Rejection[K]{Link: links[f], Result: results[f]}
	}
	return n, nil
}
