// Package pubsub is rtetherd's topic-based publish/subscribe control
// plane over multicast RT channels. A topic is a named publisher
// endpoint with a fixed RT contract {C, P, D}; subscribers are
// end-nodes. The registry maps every topic with at least one subscriber
// to exactly one multicast channel whose sink set is the current
// subscriber node set, re-admitting the distribution tree atomically
// each time membership changes: a join that does not fit the fabric is
// rejected and leaves the previous tree (and every existing subscriber)
// untouched.
//
// Delivery to subscribers reuses the /v1/watch machinery's shape: each
// topic runs a small fan-out hub assigning per-topic sequence numbers,
// publishing never blocks on a slow subscriber, and a subscriber whose
// buffer fills is evicted so it can reconnect and observe the gap.
package pubsub

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/rtether"
	"repro/rtether/wire"
)

// Registry errors.
var (
	// ErrUnknownTopic marks an operation on a topic that was never
	// created.
	ErrUnknownTopic = errors.New("pubsub: unknown topic")
	// ErrDuplicateTopic marks a Create with a name already taken.
	ErrDuplicateTopic = errors.New("pubsub: topic already exists")
	// ErrClosed marks any operation after Close.
	ErrClosed = errors.New("pubsub: registry is closed")
)

// subBuffer is each subscription's event buffer, mirroring the watch
// hub: a subscriber this far behind is evicted, not waited for.
const subBuffer = 256

// Hooks lets the embedding server observe the channel lifecycle the
// registry drives, e.g. to republish admissions and releases on the
// /v1/watch feed. Either hook may be nil. Hooks are called outside the
// registry lock.
type Hooks struct {
	// Admitted fires after a topic's multicast tree is (re-)established.
	Admitted func(topic string, ch *rtether.Channel)
	// Released fires after a topic's previous tree is released.
	Released func(topic string, id rtether.ChannelID)
}

// Subscription is one subscriber's live feed on a topic.
type Subscription struct {
	// Topic and Node identify the subscription.
	Topic string
	Node  rtether.NodeID
	// Events delivers published messages in per-topic sequence order.
	Events <-chan wire.TopicEvent
	// Dropped closes when the registry evicted this subscription for
	// falling behind (or the registry closed); no further events come.
	Dropped <-chan struct{}

	events  chan wire.TopicEvent
	dropped chan struct{}
}

// Info is a point-in-time snapshot of one topic.
type Info struct {
	Name string
	Src  rtether.NodeID
	C    int64
	P    int64
	D    int64
	// Subscribers is the deduplicated subscriber node set in join order.
	Subscribers []rtether.NodeID
	// ChannelID is the live multicast channel, 0 while no subscribers.
	ChannelID rtether.ChannelID
	// Published counts messages published so far.
	Published uint64
}

// topic is one named publisher endpoint and its delivery hub.
type topic struct {
	name string
	src  rtether.NodeID
	c    int64
	p    int64
	d    int64

	subs      []*Subscription // every live subscription, join order
	ch        *rtether.Channel
	published uint64
}

// sinkSet returns the deduplicated subscriber node set in join order,
// optionally with one extra node appended.
func (t *topic) sinkSet(extra ...rtether.NodeID) []rtether.NodeID {
	seen := make(map[rtether.NodeID]bool)
	var sinks []rtether.NodeID
	for _, s := range t.subs {
		if !seen[s.Node] {
			seen[s.Node] = true
			sinks = append(sinks, s.Node)
		}
	}
	for _, n := range extra {
		if !seen[n] {
			seen[n] = true
			sinks = append(sinks, n)
		}
	}
	return sinks
}

// Registry owns the topics of one hosted network. All methods are safe
// for concurrent use.
type Registry struct {
	mu     sync.Mutex
	net    *rtether.Network
	hooks  Hooks
	topics map[string]*topic
	closed bool
}

// NewRegistry builds a registry over the given network.
func NewRegistry(net *rtether.Network, hooks Hooks) *Registry {
	return &Registry{net: net, hooks: hooks, topics: make(map[string]*topic)}
}

// Create declares a topic. It reserves nothing: the multicast channel
// materializes with the first subscriber.
func (r *Registry) Create(name string, src rtether.NodeID, c, p, d int64) error {
	if name == "" {
		return fmt.Errorf("pubsub: topic name must not be empty")
	}
	// Validate the contract now so a broken topic is refused at creation
	// rather than at first subscribe; any sink stands in for the check.
	if err := (rtether.MulticastSpec{Src: src, Sinks: []rtether.NodeID{src + 1}, C: c, P: p, D: d}).Validate(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if _, dup := r.topics[name]; dup {
		return fmt.Errorf("%w: %q", ErrDuplicateTopic, name)
	}
	r.topics[name] = &topic{name: name, src: src, c: c, p: p, d: d}
	return nil
}

// Len returns the number of declared topics.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.topics)
}

// Snapshot lists every topic sorted by name.
func (r *Registry) Snapshot() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.topics))
	for _, t := range r.topics {
		info := Info{
			Name: t.name, Src: t.src, C: t.c, P: t.p, D: t.d,
			Subscribers: t.sinkSet(), Published: t.published,
		}
		if t.ch != nil {
			info.ChannelID = t.ch.ID()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Subscribe joins a node to a topic and returns its live feed. When the
// node set grows, the topic's multicast tree is re-admitted over the
// new sink set as one atomic decision: on rejection (the returned error
// is the tree's *rtether.AdmissionError) the previous channel keeps
// carrying the existing subscribers and the join has no effect.
//
// Re-admission releases the old tree before establishing the new one —
// the old reservation covers a subset of the new tree's links, so
// admitting the superset while the subset is still held would
// double-count the shared links. Like POST /v1/reconfigure, the two
// steps are not one atomic kernel decision: a concurrent establish can
// grab the freed capacity and make the re-admission fail, in which case
// the old tree is restored (the sink set that was feasible moments ago)
// and the join is rejected.
func (r *Registry) Subscribe(name string, node rtether.NodeID) (*Subscription, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	t, ok := r.topics[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	newSinks := t.sinkSet(node)
	if len(newSinks) != len(t.sinkSet()) { // node set grows: re-admit the tree
		if err := r.readmit(t, newSinks); err != nil {
			return nil, err
		}
	}
	sub := &Subscription{
		Topic:   name,
		Node:    node,
		events:  make(chan wire.TopicEvent, subBuffer),
		dropped: make(chan struct{}),
	}
	sub.Events = sub.events
	sub.Dropped = sub.dropped
	t.subs = append(t.subs, sub)
	return sub, nil
}

// Unsubscribe detaches a subscription (idempotent). When the node set
// shrinks, the topic's tree is re-admitted over the remaining sinks —
// or released outright when the last subscriber leaves.
func (r *Registry) Unsubscribe(sub *Subscription) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.topics[sub.Topic]
	if !ok {
		return
	}
	found := -1
	for i, s := range t.subs {
		if s == sub {
			found = i
			break
		}
	}
	if found < 0 {
		return
	}
	t.subs = append(t.subs[:found], t.subs[found+1:]...)
	select {
	case <-sub.dropped:
	default:
		close(sub.dropped)
	}
	remaining := t.sinkSet()
	if t.ch == nil {
		return
	}
	if len(remaining) == len(t.ch.Sinks()) {
		return // another subscription still needs this node
	}
	// Shrinking can only free capacity; a rejection here means a
	// concurrent establish won the freed links. The topic then has no
	// channel until the next membership change re-admits one.
	_ = r.readmit(t, remaining)
}

// readmit swaps the topic's tree to the given sink set: release the old
// channel, establish the new one, restore the old set on failure.
// Caller holds r.mu.
func (r *Registry) readmit(t *topic, sinks []rtether.NodeID) error {
	oldSinks := t.sinkSet()
	if t.ch != nil {
		id := t.ch.ID()
		if err := t.ch.Release(); err != nil && !errors.Is(err, rtether.ErrChannelClosed) {
			return err
		}
		t.ch = nil
		r.notifyReleased(t.name, id)
	}
	if len(sinks) == 0 {
		return nil
	}
	ch, err := r.net.EstablishMulticast(rtether.MulticastSpec{Src: t.src, Sinks: sinks, C: t.c, P: t.p, D: t.d})
	if err != nil {
		if len(oldSinks) > 0 {
			if old, restoreErr := r.net.EstablishMulticast(rtether.MulticastSpec{
				Src: t.src, Sinks: oldSinks, C: t.c, P: t.p, D: t.d,
			}); restoreErr == nil {
				t.ch = old
				r.notifyAdmitted(t.name, old)
			}
		}
		return err
	}
	t.ch = ch
	r.notifyAdmitted(t.name, ch)
	return nil
}

func (r *Registry) notifyAdmitted(name string, ch *rtether.Channel) {
	if r.hooks.Admitted != nil {
		go r.hooks.Admitted(name, ch)
	}
}

func (r *Registry) notifyReleased(name string, id rtether.ChannelID) {
	if r.hooks.Released != nil {
		go r.hooks.Released(name, id)
	}
}

// Publish pushes one message to a topic and fans it out to every live
// subscription, stamping it with the topic's next sequence number.
// Slow subscriptions are evicted, never waited for. Publishing to a
// topic with no subscribers is a successful no-op (delivered 0).
func (r *Registry) Publish(name, payload string) (seq uint64, delivered int, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, 0, ErrClosed
	}
	t, ok := r.topics[name]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownTopic, name)
	}
	t.published++
	ev := wire.TopicEvent{Seq: t.published, Topic: name, Payload: payload}
	kept := t.subs[:0]
	for _, s := range t.subs {
		select {
		case s.events <- ev:
			kept = append(kept, s)
			delivered++
		default:
			close(s.dropped)
		}
	}
	t.subs = kept
	return t.published, delivered, nil
}

// Close evicts every subscription and refuses further operations. The
// topics' channels are left to the owning network's shutdown.
func (r *Registry) Close() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	r.closed = true
	for _, t := range r.topics {
		for _, s := range t.subs {
			select {
			case <-s.dropped:
			default:
				close(s.dropped)
			}
		}
		t.subs = nil
	}
}
