package altsched

import (
	"math/rand"
	"testing"

	"repro/internal/edf"
)

func repeatTask(t edf.Task, n int) []edf.Task {
	out := make([]edf.Task, n)
	for i := range out {
		out[i] = t
	}
	return out
}

func TestNames(t *testing.T) {
	if (EDF{}).Name() != "EDF" || (DM{}).Name() != "DM" || (FIFO{}).Name() != "FIFO" {
		t.Error("analysis names changed; reports depend on them")
	}
	if len(All()) != 3 {
		t.Error("All() should return the three analyses")
	}
}

func TestEmptySetFeasibleEverywhere(t *testing.T) {
	for _, a := range All() {
		if !a.Feasible(nil) {
			t.Errorf("%s rejects the empty set", a.Name())
		}
	}
}

func TestInvalidTasksRejectedEverywhere(t *testing.T) {
	bad := []edf.Task{{C: 0, P: 10, D: 10}}
	for _, a := range All() {
		if a.Feasible(bad) {
			t.Errorf("%s accepted an invalid task", a.Name())
		}
	}
}

func TestFIFOKnownCapacity(t *testing.T) {
	// Paper uplink task with SDPS split: C=3, D=20. FIFO requires the
	// whole synchronous backlog (3n) to finish by every deadline: n <= 6
	// — same as EDF here because all deadlines are equal.
	task := edf.Task{C: 3, P: 100, D: 20}
	if got := CapacityOnLink(FIFO{}, task, 50); got != 6 {
		t.Errorf("FIFO capacity = %d, want 6", got)
	}
}

func TestFIFOWeakerThanEDFOnMixedDeadlines(t *testing.T) {
	// One tight task + filler: EDF orders by deadline and fits; FIFO
	// must fit the whole backlog before the tight deadline and rejects.
	tasks := []edf.Task{
		{C: 2, P: 100, D: 4},
		{C: 3, P: 100, D: 60},
		{C: 3, P: 100, D: 60},
	}
	if !(EDF{}).Feasible(tasks) {
		t.Fatal("EDF should accept this set")
	}
	if (FIFO{}).Feasible(tasks) {
		t.Error("FIFO should reject: busy period 8 exceeds tight deadline 4")
	}
}

func TestDMKnownCases(t *testing.T) {
	cases := []struct {
		name  string
		tasks []edf.Task
		want  bool
	}{
		{"single", []edf.Task{{C: 3, P: 100, D: 20}}, true},
		{"six identical fit", repeatTask(edf.Task{C: 3, P: 100, D: 20}, 6), true},
		{"seven identical overflow", repeatTask(edf.Task{C: 3, P: 100, D: 20}, 7), false},
		{
			"classic RTA example",
			// C/P/D = 1/4/4, 2/6/6, 3/12/12: R3 fixed point is 10
			// (3 + ceil(10/4)*1 + ceil(10/6)*2 = 3 + 3 + 4 = 10).
			[]edf.Task{{C: 1, P: 4, D: 4}, {C: 2, P: 6, D: 6}, {C: 3, P: 12, D: 12}},
			true,
		},
		{
			"classic example at exact response time",
			[]edf.Task{{C: 1, P: 4, D: 4}, {C: 2, P: 6, D: 6}, {C: 3, P: 12, D: 10}},
			true, // R3 = 10 = D3
		},
		{
			"classic example tightened below response time",
			[]edf.Task{{C: 1, P: 4, D: 4}, {C: 2, P: 6, D: 6}, {C: 3, P: 12, D: 9}},
			false, // R3 = 10 > 9
		},
		{
			"unconstrained deadline rejected conservatively",
			[]edf.Task{{C: 1, P: 4, D: 8}},
			false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := (DM{}).Feasible(tc.tasks); got != tc.want {
				t.Errorf("DM.Feasible = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestDMNeverBeatsEDF(t *testing.T) {
	// EDF is optimal on one processor: anything DM schedules, EDF
	// schedules. Fuzz the implication DM ⇒ EDF.
	rng := rand.New(rand.NewSource(13))
	checked := 0
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(6) + 1
		tasks := make([]edf.Task, 0, n)
		for i := 0; i < n; i++ {
			p := int64(rng.Intn(30) + 2)
			c := int64(rng.Intn(int(p))/2 + 1)
			d := c + rng.Int63n(p-c+1) // constrained: c <= d <= p
			tasks = append(tasks, edf.Task{C: c, P: p, D: d})
		}
		if (DM{}).Feasible(tasks) {
			checked++
			if !(EDF{}).Feasible(tasks) {
				t.Fatalf("DM accepted what EDF rejected: %v", tasks)
			}
		}
	}
	if checked == 0 {
		t.Fatal("fuzz never produced a DM-feasible set")
	}
}

func TestFIFONeverBeatsEDF(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	checked := 0
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(6) + 1
		tasks := make([]edf.Task, 0, n)
		for i := 0; i < n; i++ {
			p := int64(rng.Intn(40) + 2)
			c := int64(rng.Intn(int(p)) + 1)
			d := c + rng.Int63n(2*p)
			tasks = append(tasks, edf.Task{C: c, P: p, D: d})
		}
		if (FIFO{}).Feasible(tasks) {
			checked++
			if !(EDF{}).Feasible(tasks) {
				t.Fatalf("FIFO accepted what EDF rejected: %v", tasks)
			}
		}
	}
	if checked == 0 {
		t.Fatal("fuzz never produced a FIFO-feasible set")
	}
}

func TestCapacityOnLinkOrdering(t *testing.T) {
	// On the paper's SDPS uplink task, EDF >= DM >= FIFO in admitted
	// capacity (they coincide at 6 for identical tasks; use a mixed
	// baseline task to spread them).
	task := edf.Task{C: 2, P: 50, D: 11}
	edfCap := CapacityOnLink(EDF{}, task, 100)
	dmCap := CapacityOnLink(DM{}, task, 100)
	fifoCap := CapacityOnLink(FIFO{}, task, 100)
	if edfCap < dmCap || dmCap < fifoCap {
		t.Errorf("capacity order broken: EDF=%d DM=%d FIFO=%d", edfCap, dmCap, fifoCap)
	}
	if edfCap == 0 {
		t.Error("EDF capacity 0 for a trivially schedulable task")
	}
}

func TestDMPriorityOrder(t *testing.T) {
	tasks := []edf.Task{
		{C: 1, P: 10, D: 30},
		{C: 1, P: 10, D: 10},
		{C: 1, P: 5, D: 20},
	}
	order := DMPriorityOrder(tasks)
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("priority order = %v, want %v", order, want)
		}
	}
}
