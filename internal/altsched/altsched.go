// Package altsched implements the alternative per-link scheduling
// analyses the paper's future-work section points at (§18.5: "Alternative
// communication models and scheduling algorithms could be explored as
// well"): a FIFO worst-case-delay admission test and a Deadline-Monotonic
// fixed-priority response-time analysis. Both plug into the same
// link-as-processor model as the EDF test, so experiments can compare
// admission capacity scheme-for-scheme.
package altsched

import (
	"sort"

	"repro/internal/edf"
)

// Analysis is one per-link schedulability test over the supposed task set
// of a link direction (same task model as the EDF analysis).
type Analysis interface {
	// Name identifies the analysis in reports.
	Name() string
	// Feasible reports whether the task set is schedulable on one link.
	Feasible(tasks []edf.Task) bool
}

// EDF wraps the paper's analysis in the Analysis interface.
type EDF struct{ Opts edf.Options }

// Name implements Analysis.
func (EDF) Name() string { return "EDF" }

// Feasible implements Analysis.
func (e EDF) Feasible(tasks []edf.Task) bool {
	return edf.Test(tasks, e.Opts).OK()
}

// FIFO is the no-priority baseline: the output queue transmits in arrival
// order. Under the synchronous worst case a frame of task i can find one
// full period's backlog of every task (including its own earlier frames)
// ahead of it, so its worst-case queueing delay is bounded by the total
// busy backlog. The admission test is therefore: the synchronous busy
// period must not exceed any task's deadline.
//
// The test is sufficient, not tight — FIFO with admission control this
// conservative accepts far fewer channels than EDF, which is exactly the
// comparison the experiments draw.
type FIFO struct{}

// Name implements Analysis.
func (FIFO) Name() string { return "FIFO" }

// Feasible implements Analysis.
func (FIFO) Feasible(tasks []edf.Task) bool {
	if err := edf.ValidateTasks(tasks); err != nil {
		return false
	}
	if len(tasks) == 0 {
		return true
	}
	if edf.UtilizationExceedsOne(tasks) {
		return false
	}
	bp, ok := edf.BusyPeriod(tasks)
	if !ok {
		return false
	}
	for _, t := range tasks {
		if bp > t.D {
			return false
		}
	}
	return true
}

// DM is Deadline-Monotonic fixed-priority scheduling with exact
// response-time analysis (Audsley/Joseph-Pandya iteration): tasks are
// prioritized by relative deadline (shorter = higher priority) and task
// i's worst-case response time is the least fixed point of
//
//	R = C_i + sum over higher-priority j of ceil(R/P_j) * C_j
//
// which must stay within D_i. Requires constrained deadlines (D <= P) for
// exactness; task sets violating that are rejected conservatively.
type DM struct{}

// Name implements Analysis.
func (DM) Name() string { return "DM" }

// Feasible implements Analysis.
func (DM) Feasible(tasks []edf.Task) bool {
	if err := edf.ValidateTasks(tasks); err != nil {
		return false
	}
	if len(tasks) == 0 {
		return true
	}
	for _, t := range tasks {
		if t.D > t.P {
			return false // RTA below assumes constrained deadlines
		}
	}
	if edf.UtilizationExceedsOne(tasks) {
		return false
	}
	byPrio := edf.SortByDeadline(tasks)
	for i, t := range byPrio {
		r := t.C
		for iter := 0; iter < 1<<16; iter++ {
			next := t.C
			for j := 0; j < i; j++ {
				hp := byPrio[j]
				next += ceilDiv(r, hp.P) * hp.C
			}
			if next == r {
				break
			}
			r = next
			if r > t.D {
				return false
			}
		}
		if r > t.D {
			return false
		}
	}
	return true
}

func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// All returns the three analyses in comparison order.
func All() []Analysis {
	return []Analysis{EDF{}, DM{}, FIFO{}}
}

// CapacityOnLink returns how many identical tasks the analysis admits on
// one link before the first rejection — the per-link saturation point the
// comparison tables report.
func CapacityOnLink(a Analysis, task edf.Task, max int) int {
	tasks := make([]edf.Task, 0, max)
	for n := 1; n <= max; n++ {
		tasks = append(tasks, task)
		if !a.Feasible(tasks) {
			return n - 1
		}
	}
	return max
}

// DMPriorityOrder exposes the deadline-monotonic priority order used by
// the RTA (for tests and documentation): indices into the input sorted by
// increasing deadline.
func DMPriorityOrder(tasks []edf.Task) []int {
	idx := make([]int, len(tasks))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if tasks[idx[a]].D != tasks[idx[b]].D {
			return tasks[idx[a]].D < tasks[idx[b]].D
		}
		return tasks[idx[a]].P < tasks[idx[b]].P
	})
	return idx
}
