package exp

import "testing"

// The experiments are fully deterministic, so the headline tables can be
// locked byte-for-byte. If an intentional change to the admission control
// or the schemes moves these numbers, the new values belong here AND in
// the experiment catalogue.

const fig185GoldenCSV = `requested,accepted(SDPS),accepted(ADPS)
20,20,20
40,40,40
60,60,60
80,60,80
100,60,100
120,60,110
140,60,110
160,60,110
180,60,110
200,60,110
`

func TestFig185Golden(t *testing.T) {
	got := Fig185().CSV()
	if got != fig185GoldenCSV {
		t.Errorf("Fig. 18.5 output changed.\ngot:\n%s\nwant:\n%s", got, fig185GoldenCSV)
	}
}

const multiSwitchGoldenCSV = `switches,hops,accepted(H-SDPS),accepted(H-ADPS)
1,2,100,150
2,3,6,18
3,4,5,9
4,5,4,6
`

func TestMultiSwitchGolden(t *testing.T) {
	got := MultiSwitch().CSV()
	if got != multiSwitchGoldenCSV {
		t.Errorf("E6 output changed.\ngot:\n%s\nwant:\n%s", got, multiSwitchGoldenCSV)
	}
}

const altSchedGoldenCSV = `scenario,EDF,DM,FIFO
identical C=3 P=100 d=20,6,6,6
identical C=3 P=100 d=40,13,13,13
"tight task (C=2 d=6) present, add C=3 P=100 d=40",12,12,1
"harmonic base (C=2 P=4 d=4), add C=3 P=6 d=6",1,0,0
`

func TestAltSchedGolden(t *testing.T) {
	got := AltSched().CSV()
	if got != altSchedGoldenCSV {
		t.Errorf("E7 output changed.\ngot:\n%s\nwant:\n%s", got, altSchedGoldenCSV)
	}
}
