package exp

import (
	"strconv"
	"strings"
	"testing"
)

func atoi(t *testing.T, s string) int {
	t.Helper()
	v, err := strconv.Atoi(s)
	if err != nil {
		t.Fatalf("cell %q is not an integer", s)
	}
	return v
}

// TestFig185Shape pins the reproduction target: SDPS plateaus at exactly
// 60 accepted channels; ADPS strictly dominates SDPS at saturation and
// lands in the paper's ≈110 region; both accept everything while
// unsaturated.
func TestFig185Shape(t *testing.T) {
	tb := Fig185()
	rows := tb.Rows()
	if len(rows) != 10 {
		t.Fatalf("Fig. 18.5 has %d rows, want 10 (requested 20..200)", len(rows))
	}
	for i, row := range rows {
		requested := atoi(t, row[0])
		sdps := atoi(t, row[1])
		adps := atoi(t, row[2])
		if requested != 20*(i+1) {
			t.Fatalf("row %d requested = %d", i, requested)
		}
		wantSDPS := requested
		if wantSDPS > 60 {
			wantSDPS = 60
		}
		if sdps != wantSDPS {
			t.Errorf("requested=%d: SDPS accepted %d, want %d", requested, sdps, wantSDPS)
		}
		if adps < sdps {
			t.Errorf("requested=%d: ADPS %d below SDPS %d", requested, adps, sdps)
		}
	}
	last := rows[len(rows)-1]
	adpsFinal := atoi(t, last[2])
	if adpsFinal < 90 || adpsFinal > 130 {
		t.Errorf("ADPS at 200 requested = %d, paper shows ≈110", adpsFinal)
	}
}

func TestDeadlineSweepShape(t *testing.T) {
	tb := DeadlineSweep()
	rows := tb.Rows()
	if len(rows) == 0 {
		t.Fatal("empty sweep")
	}
	adpsWinsSomewhere := false
	for _, row := range rows {
		s, a := atoi(t, row[1]), atoi(t, row[2])
		if a < s {
			t.Errorf("d=%s: ADPS %d < SDPS %d", row[0], a, s)
		}
		if a > s {
			adpsWinsSomewhere = true
		}
	}
	if !adpsWinsSomewhere {
		t.Error("ADPS never beat SDPS across the deadline sweep")
	}
}

func TestMultiSwitchShape(t *testing.T) {
	tb := MultiSwitch()
	rows := tb.Rows()
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		hsdps, hadps := atoi(t, row[2]), atoi(t, row[3])
		if hadps < hsdps {
			t.Errorf("%s switches: H-ADPS %d < H-SDPS %d", row[0], hadps, hsdps)
		}
	}
	// More switches → more hops per fixed deadline → capacity cannot grow.
	first := atoi(t, rows[0][3])
	lastRow := atoi(t, rows[len(rows)-1][3])
	if lastRow > first {
		t.Errorf("H-ADPS capacity grew with fabric length: %d → %d", first, lastRow)
	}
}

func TestAltSchedShape(t *testing.T) {
	tb := AltSched()
	rows := tb.Rows()
	fifoLosesSomewhere, dmLosesSomewhere := false, false
	for _, row := range rows {
		edfCap := atoi(t, row[1])
		dmCap := atoi(t, row[2])
		fifoCap := atoi(t, row[3])
		if edfCap < dmCap || dmCap < fifoCap {
			t.Errorf("%s: capacity order broken EDF=%d DM=%d FIFO=%d",
				row[0], edfCap, dmCap, fifoCap)
		}
		if fifoCap < edfCap {
			fifoLosesSomewhere = true
		}
		if dmCap < edfCap {
			dmLosesSomewhere = true
		}
	}
	if !fifoLosesSomewhere {
		t.Error("FIFO never lost to EDF — mixed-deadline scenario missing")
	}
	if !dmLosesSomewhere {
		t.Error("DM never lost to EDF — harmonic scenario missing")
	}
}

func TestDelayGuaranteePasses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := DelayGuarantee()
	for _, row := range tb.Rows() {
		if row[6] != "PASS" {
			t.Errorf("scheme %s violated its guarantee: %v", row[0], row)
		}
		if atoi(t, row[3]) != 0 {
			t.Errorf("scheme %s missed deadlines: %v", row[0], row)
		}
		worst, guarantee := atoi(t, row[4]), atoi(t, row[5])
		if worst > guarantee {
			t.Errorf("scheme %s worst %d > guarantee %d", row[0], worst, guarantee)
		}
	}
}

func TestFeasibilityModesShowsUnsoundness(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := FeasibilityModes()
	rows := tb.Rows()
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	if rows[0][6] != "PASS" || atoi(t, rows[0][3]) != 0 {
		t.Errorf("paper policy row: %v", rows[0])
	}
	if rows[1][6] != "FAIL" || atoi(t, rows[1][3]) == 0 {
		t.Errorf("utilization-only policy should miss deadlines: %v", rows[1])
	}
	if atoi(t, rows[1][1]) <= atoi(t, rows[0][1]) {
		t.Error("utilization-only should over-admit relative to the full test")
	}
}

func TestShapingAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := ShapingAblation()
	rows := tb.Rows()
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if atoi(t, row[3]) != 0 {
			t.Errorf("mode %q missed deadlines: %v", row[0], row)
		}
	}
	shapedHolds, _ := strconv.Atoi(rows[0][6])
	unshapedHolds, _ := strconv.Atoi(rows[1][6])
	if shapedHolds == 0 {
		t.Error("shaped mode reported zero holds")
	}
	if unshapedHolds != 0 {
		t.Error("unshaped mode reported holds")
	}
}

func TestCoexistence(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := Coexistence()
	rows := tb.Rows()
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, row := range rows {
		if atoi(t, row[1]) != 0 {
			t.Errorf("rate %s: RT misses %s under background load", row[0], row[1])
		}
	}
	// At non-zero rates background traffic must actually flow.
	if atoi(t, rows[1][4]) == 0 {
		t.Error("no background frames delivered at the lowest non-zero rate")
	}
}

func TestDPSSearchShape(t *testing.T) {
	tb := DPSSearch()
	rows := tb.Rows()
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	improvedSomewhere := false
	for _, row := range rows {
		sdps, adps, search := atoi(t, row[1]), atoi(t, row[2]), atoi(t, row[3])
		if adps < sdps {
			t.Errorf("%s: ADPS %d < SDPS %d", row[0], adps, sdps)
		}
		if search < adps {
			t.Errorf("%s: search %d < ADPS %d — fallbacks must never hurt", row[0], search, adps)
		}
		if search > adps {
			improvedSomewhere = true
		}
		if atoi(t, row[5]) < atoi(t, row[4]) {
			t.Errorf("%s: search ran fewer feasibility tests than single-scheme", row[0])
		}
	}
	if !improvedSomewhere {
		t.Log("note: fallback search matched ADPS exactly on both workloads")
	}
}

func TestFabricDelayPasses(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := FabricDelay()
	rows := tb.Rows()
	if len(rows) != 8 {
		t.Fatalf("got %d rows, want 4 fabrics x 2 schemes", len(rows))
	}
	for _, row := range rows {
		if row[7] != "PASS" {
			t.Errorf("fabric guarantee violated: %v", row)
		}
		if atoi(t, row[4]) != 0 {
			t.Errorf("misses in %v", row)
		}
		if atoi(t, row[3]) == 0 {
			t.Errorf("no traffic in %v", row)
		}
	}
}

func TestDisciplineMismatch(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation experiment")
	}
	tb := DisciplineMismatch()
	rows := tb.Rows()
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	byName := map[string][]string{}
	for _, row := range rows {
		byName[row[0]] = row
	}
	if byName["EDF"][6] != "PASS" || atoi(t, byName["EDF"][3]) != 0 {
		t.Errorf("EDF row: %v", byName["EDF"])
	}
	if byName["DM"][6] != "PASS" {
		t.Errorf("DM row (tight channels have the shortest deadlines, DM must cope): %v", byName["DM"])
	}
	if byName["FIFO"][6] != "FAIL" || atoi(t, byName["FIFO"][4]) == 0 {
		t.Errorf("FIFO row should miss tight-channel deadlines: %v", byName["FIFO"])
	}
}

func TestAllExperimentsEnumerated(t *testing.T) {
	all := All()
	if len(all) != 11 {
		t.Fatalf("All() has %d experiments, want 11 (E1..E11)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Run == nil || e.Desc == "" {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment ID %q", e.ID)
		}
		seen[e.ID] = true
	}
	if !seen["fig18.5"] {
		t.Error("headline experiment missing")
	}
}

func TestTablesRenderNonEmpty(t *testing.T) {
	// Every fast experiment renders a non-empty table with its headers.
	for _, e := range []Experiment{
		{ID: "fig18.5", Desc: "x", Run: Fig185},
		{ID: "dsweep", Desc: "x", Run: DeadlineSweep},
		{ID: "altsched", Desc: "x", Run: AltSched},
		{ID: "multiswitch", Desc: "x", Run: MultiSwitch},
	} {
		out := e.Run().String()
		if !strings.Contains(out, "==") || len(strings.Split(out, "\n")) < 4 {
			t.Errorf("%s renders poorly:\n%s", e.ID, out)
		}
	}
}
