package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/fabricsim"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// buildLoaded constructs a network with the paper layout, pushes the
// request sequence through the wire-level establishment handshake, and
// starts synchronized traffic on every accepted channel. It returns the
// network and the accepted channel IDs.
func buildLoaded(cfg netsim.Config, requests []core.ChannelSpec, offsets []int64) (*netsim.Network, []core.ChannelID) {
	n := netsim.New(cfg)
	for _, id := range traffic.PaperLayout.Nodes() {
		n.MustAddNode(id)
	}
	var accepted []core.ChannelID
	for _, spec := range requests {
		id, err := n.EstablishChannel(spec)
		if err != nil {
			continue
		}
		accepted = append(accepted, id)
	}
	for k, id := range accepted {
		ch := n.Controller().State().Get(id)
		var off int64
		if k < len(offsets) {
			off = offsets[k]
		}
		if err := n.Node(ch.Spec.Src).StartTraffic(id, off); err != nil {
			panic(err)
		}
	}
	return n, accepted
}

// simHorizon is the default measurement window: 30 hyperperiods of the
// paper workload after load completes.
const simHorizon = 3000

// DelayGuarantee (E3) simulates the full Fig. 18.5 workload under both
// schemes and verifies Eq. 18.1: every frame of every admitted channel is
// delivered within d_i + T_latency. It reports the worst observed delay
// against the guarantee.
func DelayGuarantee() *stats.Table {
	tb := stats.NewTable(
		"E3 — simulated delay vs guarantee, Fig. 18.5 workload (3000 slots)",
		"scheme", "accepted", "delivered", "misses", "worst delay", "guarantee", "verdict")
	for _, dps := range []core.DPS{core.SDPS{}, core.ADPS{}} {
		requests := traffic.PaperLayout.Requests(200, traffic.PaperSpec)
		n, accepted := buildLoaded(netsim.Config{DPS: dps}, requests, nil)
		n.Run(n.Engine().Now() + simHorizon)
		rep := n.Report()
		_, worst := rep.WorstDelay()
		guarantee := traffic.PaperSpec.D + n.ExtraLatency()
		tb.AddRowf(dps.Name(), len(accepted), rep.TotalDelivered(), rep.TotalMisses(),
			worst, guarantee, passFail(rep.TotalMisses() == 0 && worst <= guarantee))
	}
	return tb
}

// FeasibilityModes (E2) contrasts the paper's two-constraint admission
// with a utilization-only test (sound only for d = P, as Liu & Layland
// showed). The utilization-only column over-admits 33 channels on one
// master uplink; simulation shows the resulting deadline misses, while
// the demand-criterion system stays clean.
func FeasibilityModes() *stats.Table {
	tb := stats.NewTable(
		"E2 — admission policy soundness, one master, C=3 P=100 d=40 (3000 slots)",
		"policy", "accepted", "delivered", "misses", "worst delay", "guarantee", "verdict")

	// Policy 1: the paper's full test (utilization + demand criterion).
	{
		n := netsim.New(netsim.Config{DPS: core.SDPS{}})
		n.MustAddNode(0)
		for s := 0; s < 40; s++ {
			n.MustAddNode(core.NodeID(100 + s))
		}
		var ids []core.ChannelID
		for s := 0; s < 40; s++ {
			id, err := n.EstablishChannel(core.ChannelSpec{
				Src: 0, Dst: core.NodeID(100 + s), C: 3, P: 100, D: 40})
			if err != nil {
				continue
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			ch := n.Controller().State().Get(id)
			if err := n.Node(ch.Spec.Src).StartTraffic(id, 0); err != nil {
				panic(err)
			}
		}
		n.Run(n.Engine().Now() + simHorizon)
		rep := n.Report()
		_, worst := rep.WorstDelay()
		tb.AddRowf("utilization+demand (paper)", len(ids), rep.TotalDelivered(),
			rep.TotalMisses(), worst, 40, passFail(rep.TotalMisses() == 0))
	}

	// Policy 2: utilization-only. U = 3q/100 <= 1 admits q = 33 channels,
	// far past the demand bound; the synchronous burst then blows the
	// end-to-end budget.
	{
		n := netsim.New(netsim.Config{DPS: core.SDPS{}, DisableShaping: true})
		n.MustAddNode(0)
		for s := 0; s < 40; s++ {
			n.MustAddNode(core.NodeID(100 + s))
		}
		var ids []core.ChannelID
		for s := 0; s < 33; s++ {
			id, err := n.ForceChannel(core.ChannelSpec{
				Src: 0, Dst: core.NodeID(100 + s), C: 3, P: 100, D: 40}, core.Partition{})
			if err != nil {
				panic(err)
			}
			ids = append(ids, id)
		}
		for _, id := range ids {
			if err := n.Node(0).StartTraffic(id, 0); err != nil {
				panic(err)
			}
		}
		n.Run(n.Engine().Now() + simHorizon)
		rep := n.Report()
		_, worst := rep.WorstDelay()
		tb.AddRowf("utilization only (unsound)", len(ids), rep.TotalDelivered(),
			rep.TotalMisses(), worst, 40, passFail(rep.TotalMisses() == 0))
	}
	return tb
}

// ShapingAblation (E4) runs the ADPS-accepted workload with and without
// the switch's release-guard shaper, with randomized release offsets so
// uplink completion jitter is visible. Both modes must meet deadlines on
// this workload; the shaped run shows held frames and a delay profile
// closer to the analytical release pattern.
func ShapingAblation() *stats.Table {
	tb := stats.NewTable(
		"E4 — release-guard shaping ablation, ADPS workload (3000 slots)",
		"mode", "accepted", "delivered", "misses", "worst delay", "mean delay", "shaper holds")
	for _, disable := range []bool{false, true} {
		rng := rand.New(rand.NewSource(77))
		requests := traffic.PaperLayout.Requests(200, traffic.PaperSpec)
		offsets := traffic.UniformOffsets(rng, 200, 99)
		n, accepted := buildLoaded(netsim.Config{DPS: core.ADPS{}, DisableShaping: disable},
			requests, offsets)
		n.Run(n.Engine().Now() + simHorizon)
		rep := n.Report()
		_, worst := rep.WorstDelay()
		var meanSum float64
		var meanN int
		for _, m := range rep.Channels {
			meanSum += m.Delays.Mean()
			meanN++
		}
		mean := 0.0
		if meanN > 0 {
			mean = meanSum / float64(meanN)
		}
		_, _, shaped, _, _ := n.Switch().Counters()
		mode := "shaped (release guard)"
		if disable {
			mode = "unshaped (paper-naive)"
		}
		tb.AddRowf(mode, len(accepted), rep.TotalDelivered(), rep.TotalMisses(),
			worst, mean, shaped)
	}
	return tb
}

// FabricDelay (E10) is the dynamic counterpart of E6: the channels the
// fabric admission accepts on line fabrics of 1..4 switches are actually
// simulated hop by hop, verifying that per-hop deadline partitioning
// bounds end-to-end delay — the multi-hop generalization of Eq. 18.1.
func FabricDelay() *stats.Table {
	tb := stats.NewTable(
		"E10 — fabric simulation: admitted channels meet end-to-end deadlines (1200 slots)",
		"switches", "scheme", "admitted", "delivered", "misses", "worst delay", "deadline", "verdict")
	for _, k := range []int{1, 2, 3, 4} {
		for _, dps := range []topo.HDPS{topo.HSDPS{}, topo.HADPS{}} {
			tp := topo.Line(k)
			for m := 0; m < 10; m++ {
				if err := tp.AttachNode(core.NodeID(m), 0); err != nil {
					panic(err)
				}
			}
			for s := 0; s < 50; s++ {
				if err := tp.AttachNode(core.NodeID(100+s), topo.SwitchID(k-1)); err != nil {
					panic(err)
				}
			}
			ctrl := topo.NewController(tp, topo.Config{DPS: dps})
			for q := 0; q < 150; q++ {
				_, _ = ctrl.Request(core.ChannelSpec{
					Src: core.NodeID(q % 10),
					Dst: core.NodeID(100 + q%50),
					C:   3, P: 300, D: 60,
				})
			}
			s, err := fabricsim.New(ctrl.State(), nil, fabricsim.Config{})
			if err != nil {
				panic(err)
			}
			s.Run(1200)
			delivered, misses, worst := s.Totals()
			tb.AddRowf(k, dps.Name(), ctrl.State().Len(), delivered, misses, worst, 60,
				passFail(misses == 0 && worst <= 60))
		}
	}
	return tb
}

// DisciplineMismatch (E11) runs the same EDF-admitted channel set under
// three dispatchers: EDF (the paper's, matching the analysis), DM and
// FIFO. Each master carries five loose channels (C=3, d=80) plus one
// tight one (C=2, d=12); EDF and DM serve the tight frames first, FIFO
// lets them drown in the synchronous loose burst — deadline misses
// despite a "feasible" admission, because the feasibility test models an
// EDF dispatcher.
func DisciplineMismatch() *stats.Table {
	tb := stats.NewTable(
		"E11 — EDF-admitted workload under different dispatchers (3000 slots)",
		"dispatcher", "accepted", "delivered", "misses", "tight-channel misses", "worst delay", "verdict")
	for _, disc := range []sched.Discipline{sched.DisciplineEDF, sched.DisciplineDM, sched.DisciplineFIFO} {
		n := netsim.New(netsim.Config{DPS: core.SDPS{}, Discipline: disc})
		const masters, slavesPerMaster = 4, 6
		for m := 0; m < masters; m++ {
			n.MustAddNode(core.NodeID(m))
		}
		for s := 0; s < masters*slavesPerMaster; s++ {
			n.MustAddNode(core.NodeID(100 + s))
		}
		var loose, tight []core.ChannelID
		for m := 0; m < masters; m++ {
			base := 100 + m*slavesPerMaster
			for k := 0; k < 5; k++ {
				id, err := n.EstablishChannel(core.ChannelSpec{
					Src: core.NodeID(m), Dst: core.NodeID(base + k), C: 3, P: 100, D: 80})
				if err != nil {
					panic(err)
				}
				loose = append(loose, id)
			}
			id, err := n.EstablishChannel(core.ChannelSpec{
				Src: core.NodeID(m), Dst: core.NodeID(base + 5), C: 2, P: 100, D: 12})
			if err != nil {
				panic(err)
			}
			tight = append(tight, id)
		}
		// Loose sources attach (and therefore release) first — the FIFO
		// worst case the analysis must survive under EDF.
		for _, id := range append(append([]core.ChannelID{}, loose...), tight...) {
			ch := n.Controller().State().Get(id)
			if err := n.Node(ch.Spec.Src).StartTraffic(id, 0); err != nil {
				panic(err)
			}
		}
		n.Run(n.Engine().Now() + simHorizon)
		rep := n.Report()
		var tightMisses int64
		for _, id := range tight {
			if m := rep.Channels[id]; m != nil {
				tightMisses += m.Misses
			}
		}
		_, worst := rep.WorstDelay()
		tb.AddRowf(disc.String(), len(loose)+len(tight), rep.TotalDelivered(),
			rep.TotalMisses(), tightMisses, worst, passFail(rep.TotalMisses() == 0))
	}
	return tb
}

// Coexistence (E5) loads the ADPS RT workload and adds Poisson background
// best-effort traffic between every master and its first slave at
// increasing rates. RT guarantees must be untouched; non-RT throughput
// degrades gracefully (drops at bounded queues).
func Coexistence() *stats.Table {
	tb := stats.NewTable(
		"E5 — RT/non-RT coexistence, ADPS workload + Poisson background (3000 slots)",
		"bg rate (frames/slot/node)", "rt misses", "rt worst", "bg sent", "bg delivered", "bg drops", "bg mean delay")
	for _, rate := range []float64{0, 0.05, 0.2, 0.5} {
		requests := traffic.PaperLayout.Requests(200, traffic.PaperSpec)
		n, _ := buildLoaded(netsim.Config{DPS: core.ADPS{}, NonRTQueueCap: 256}, requests, nil)
		start := n.Engine().Now()
		sent := 0
		if rate > 0 {
			rng := rand.New(rand.NewSource(99))
			for m := 0; m < traffic.PaperLayout.Masters; m++ {
				src := traffic.PaperLayout.Master(m)
				dst := traffic.PaperLayout.Slave(m)
				for _, at := range traffic.PoissonArrivals(rng, rate, simHorizon) {
					src, dst := src, dst
					n.Engine().At(start+at, func() {
						n.Node(src).SendNonRT(dst, []byte("bg"))
					})
					sent++
				}
			}
		}
		n.Run(start + simHorizon)
		rep := n.Report()
		_, worst := rep.WorstDelay()
		tb.AddRowf(fmt.Sprintf("%.2f", rate), rep.TotalMisses(), worst,
			sent, rep.NonRTDelivered, rep.NonRTDrops, rep.NonRTDelay.Mean())
	}
	return tb
}
