// Package exp is the experiment harness: one function per table/figure of
// the paper's evaluation (plus the supporting and future-work experiments
// catalogued by rtexp -list), each returning a printable table with the
// same rows/series the paper reports. The cmd/rtexp binary and the
// repository benchmarks both drive these functions, so "regenerate the
// figure" is one call.
package exp

import (
	"repro/internal/altsched"
	"repro/internal/core"
	"repro/internal/edf"
	"repro/internal/stats"
	"repro/internal/topo"
	"repro/internal/traffic"
)

// Experiment couples an identifier with its runner, for enumeration by
// the CLI.
type Experiment struct {
	ID   string // short selector, e.g. "fig18.5"
	Desc string
	Run  func() *stats.Table
}

// All returns every experiment in catalogue order.
func All() []Experiment {
	return []Experiment{
		{"fig18.5", "E1: accepted vs requested channels, SDPS vs ADPS (Fig. 18.5)", Fig185},
		{"feas", "E2: utilization-only admission is unsound for d < P", FeasibilityModes},
		{"delay", "E3: simulated worst-case delay vs guarantee (Eq. 18.1)", DelayGuarantee},
		{"shaping", "E4: release-guard shaping ablation", ShapingAblation},
		{"coexist", "E5: RT guarantees under background best-effort load", Coexistence},
		{"multiswitch", "E6: multi-switch fabrics, H-SDPS vs H-ADPS (future work)", MultiSwitch},
		{"altsched", "E7: EDF vs DM vs FIFO per-link capacity (future work)", AltSched},
		{"dsweep", "E8: acceptance vs deadline tightness", DeadlineSweep},
		{"dpssearch", "E9: DPS fallback search ablation", DPSSearch},
		{"fabricdelay", "E10: fabric simulation — multi-hop delay guarantee", FabricDelay},
		{"discipline", "E11: EDF-admitted workload under EDF/DM/FIFO dispatchers", DisciplineMismatch},
	}
}

// acceptedAtCheckpoints feeds the request sequence to a fresh controller
// and records the cumulative accepted count at each checkpoint index.
func acceptedAtCheckpoints(dps core.DPS, requests []core.ChannelSpec, checkpoints []int) []int {
	ctrl := core.NewController(core.Config{DPS: dps})
	out := make([]int, 0, len(checkpoints))
	next := 0
	accepted := 0
	for k, spec := range requests {
		if _, err := ctrl.Request(spec); err == nil {
			accepted++
		}
		for next < len(checkpoints) && k+1 == checkpoints[next] {
			out = append(out, accepted)
			next++
		}
	}
	for next < len(checkpoints) {
		out = append(out, accepted)
		next++
	}
	return out
}

// Fig185 reproduces Figure 18.5: the number of accepted channels as a
// function of the number of requested channels, for SDPS and ADPS, on the
// 10-master/50-slave workload with uniform channels C=3, P=100, d=40.
//
// Paper shape: SDPS plateaus at 60 (six channels per master uplink);
// ADPS keeps climbing to ≈110.
func Fig185() *stats.Table {
	checkpoints := make([]int, 0, 10)
	for r := 20; r <= 200; r += 20 {
		checkpoints = append(checkpoints, r)
	}
	requests := traffic.PaperLayout.Requests(200, traffic.PaperSpec)
	sdps := acceptedAtCheckpoints(core.SDPS{}, requests, checkpoints)
	adps := acceptedAtCheckpoints(core.ADPS{}, requests, checkpoints)

	tb := stats.NewTable(
		"Fig. 18.5 — accepted channels vs requested (10 masters, 50 slaves, C=3 P=100 d=40)",
		"requested", "accepted(SDPS)", "accepted(ADPS)")
	for i, r := range checkpoints {
		tb.AddRowf(r, sdps[i], adps[i])
	}
	return tb
}

// DeadlineSweep (E8) repeats the Fig. 18.5 acceptance comparison across
// deadline tightness: the ADPS advantage is largest for mid-range
// deadlines and vanishes when deadlines are so tight (d = 2C) that no
// partition has slack, or so loose that utilization binds first.
func DeadlineSweep() *stats.Table {
	tb := stats.NewTable(
		"E8 — accepted of 200 requested vs deadline d (C=3, P=100)",
		"d", "accepted(SDPS)", "accepted(ADPS)", "ADPS/SDPS")
	for _, d := range []int64{6, 8, 10, 15, 20, 30, 40, 60, 80, 100} {
		params := traffic.PaperSpec
		params.D = d
		requests := traffic.PaperLayout.Requests(200, params)
		s := acceptedAtCheckpoints(core.SDPS{}, requests, []int{200})[0]
		a := acceptedAtCheckpoints(core.ADPS{}, requests, []int{200})[0]
		ratio := 0.0
		if s > 0 {
			ratio = float64(a) / float64(s)
		}
		tb.AddRowf(d, s, a, ratio)
	}
	return tb
}

// MultiSwitch (E6) extends the acceptance experiment to line fabrics of
// 1..4 switches with the masters homed on the first switch and the slaves
// on the last, so every channel crosses every trunk. H-ADPS shifts
// deadline budget onto the loaded trunks and dominates H-SDPS.
func MultiSwitch() *stats.Table {
	tb := stats.NewTable(
		"E6 — accepted of 150 requested on line fabrics (C=3, P=300, d=60)",
		"switches", "hops", "accepted(H-SDPS)", "accepted(H-ADPS)")
	for _, k := range []int{1, 2, 3, 4} {
		buildCtrl := func(dps topo.HDPS) *topo.Controller {
			tp := topo.Line(k)
			for m := 0; m < 10; m++ {
				if err := tp.AttachNode(core.NodeID(m), 0); err != nil {
					panic(err)
				}
			}
			for s := 0; s < 50; s++ {
				if err := tp.AttachNode(core.NodeID(100+s), topo.SwitchID(k-1)); err != nil {
					panic(err)
				}
			}
			return topo.NewController(tp, topo.Config{DPS: dps})
		}
		count := func(dps topo.HDPS) int {
			ctrl := buildCtrl(dps)
			accepted := 0
			for q := 0; q < 150; q++ {
				spec := core.ChannelSpec{
					Src: core.NodeID(q % 10),
					Dst: core.NodeID(100 + q%50),
					C:   3, P: 300, D: 60,
				}
				if _, err := ctrl.Request(spec); err == nil {
					accepted++
				}
			}
			return accepted
		}
		hops := k + 1
		tb.AddRowf(k, hops, count(topo.HSDPS{}), count(topo.HADPS{}))
	}
	return tb
}

// capacityWithBase counts how many copies of add fit on a link already
// carrying base under the given analysis.
func capacityWithBase(a altsched.Analysis, base []edf.Task, add edf.Task, max int) int {
	tasks := append([]edf.Task(nil), base...)
	for n := 1; n <= max; n++ {
		tasks = append(tasks, add)
		if !a.Feasible(tasks) {
			return n - 1
		}
	}
	return max
}

// AltSched (E7) compares per-link admission capacity under the three
// analyses. For identical tasks the three coincide; mixed deadline
// classes separate them: FIFO collapses as soon as one tight deadline
// shares the link, and DM loses to EDF on high-utilization harmonic
// mixes (EDF is optimal on one processor).
func AltSched() *stats.Table {
	tb := stats.NewTable(
		"E7 — channels admitted on one link under EDF / DM / FIFO analyses",
		"scenario", "EDF", "DM", "FIFO")
	rows := []struct {
		name string
		base []edf.Task
		add  edf.Task
	}{
		{"identical C=3 P=100 d=20", nil, edf.Task{C: 3, P: 100, D: 20}},
		{"identical C=3 P=100 d=40", nil, edf.Task{C: 3, P: 100, D: 40}},
		{
			"tight task (C=2 d=6) present, add C=3 P=100 d=40",
			[]edf.Task{{C: 2, P: 100, D: 6}},
			edf.Task{C: 3, P: 100, D: 40},
		},
		{
			"harmonic base (C=2 P=4 d=4), add C=3 P=6 d=6",
			[]edf.Task{{C: 2, P: 4, D: 4}},
			edf.Task{C: 3, P: 6, D: 6},
		},
	}
	for _, r := range rows {
		tb.AddRowf(r.name,
			capacityWithBase(altsched.EDF{}, r.base, r.add, 200),
			capacityWithBase(altsched.DM{}, r.base, r.add, 200),
			capacityWithBase(altsched.FIFO{}, r.base, r.add, 200),
		)
	}
	return tb
}

// DPSSearch (E9) quantifies the DPS-as-search-space idea: a DPS is one
// point in the paper's "vector field" of deadline splits, so before
// rejecting a request the switch can try several points. Columns compare
// single-scheme admission against a search over {primary + fallbacks}
// on the Fig. 18.5 workload and a harder bidirectional variant (forward
// master→slave plus reverse slave→master channels), where no single
// static weighting fits both directions.
func DPSSearch() *stats.Table {
	fallbacks := []core.DPS{
		core.SDPS{},
		core.FixedDPS{UpNum: 2, UpDen: 3},
		core.FixedDPS{UpNum: 1, UpDen: 3},
		core.FixedDPS{UpNum: 5, UpDen: 6},
	}
	run := func(requests []core.ChannelSpec, dps core.DPS, withFallback bool) int {
		cfg := core.Config{DPS: dps}
		if withFallback {
			cfg.Fallbacks = fallbacks
		}
		ctrl := core.NewController(cfg)
		accepted := 0
		for _, s := range requests {
			if _, err := ctrl.Request(s); err == nil {
				accepted++
			}
		}
		return accepted
	}

	forward := traffic.PaperLayout.Requests(200, traffic.PaperSpec)
	bidi := make([]core.ChannelSpec, 0, 200)
	fwd := traffic.PaperLayout.Requests(100, traffic.PaperSpec)
	rev := traffic.PaperLayout.ReverseRequests(100, traffic.PaperSpec)
	for i := 0; i < 100; i++ {
		bidi = append(bidi, fwd[i], rev[i])
	}

	tb := stats.NewTable(
		"E9 — DPS fallback search (accepted of 200 requested)",
		"workload", "SDPS", "ADPS", "ADPS+search", "tests run (ADPS)", "tests run (search)")
	for _, w := range []struct {
		name string
		reqs []core.ChannelSpec
	}{
		{"master→slave (Fig 18.5)", forward},
		{"bidirectional master↔slave", bidi},
	} {
		ctrlA := core.NewController(core.Config{DPS: core.ADPS{}})
		adps := 0
		for _, s := range w.reqs {
			if _, err := ctrlA.Request(s); err == nil {
				adps++
			}
		}
		ctrlS := core.NewController(core.Config{DPS: core.ADPS{}, Fallbacks: fallbacks})
		search := 0
		for _, s := range w.reqs {
			if _, err := ctrlS.Request(s); err == nil {
				search++
			}
		}
		tb.AddRowf(w.name,
			run(w.reqs, core.SDPS{}, false),
			adps,
			search,
			ctrlA.Stats().LinksChecked,
			ctrlS.Stats().LinksChecked,
		)
	}
	return tb
}

// passFail renders a guarantee-compliance verdict cell.
func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}
