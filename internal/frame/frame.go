// Package frame implements byte-exact encodings of the Ethernet frames the
// RT layer exchanges: the RequestFrame and ResponseFrame of the channel
// establishment protocol (Figs. 18.3 and 18.4) and the deadline-stamped RT
// data frames of §18.2.2, where the RT layer rewrites the IP header so
// that the IP source address plus the 16 most significant bits of the IP
// destination address carry the 48-bit absolute deadline, the 16 least
// significant bits of the IP destination carry the RT channel ID, and the
// Type-of-Service field is set to 255.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// MAC is a 48-bit Ethernet hardware address.
type MAC [6]byte

// String implements fmt.Stringer ("aa:bb:cc:dd:ee:ff").
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// NodeMAC returns the deterministic locally-administered MAC the simulator
// assigns to end-node n. Bit 1 of the first octet marks it locally
// administered, so these can never collide with real vendor addresses.
func NodeMAC(n uint16) MAC {
	return MAC{0x02, 0x52, 0x54, 0x00, byte(n >> 8), byte(n)}
}

// SwitchMAC is the address of the switch's RT channel management entity.
var SwitchMAC = MAC{0x02, 0x52, 0x54, 0xff, 0xff, 0xfe}

// Broadcast is the Ethernet broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// IPv4 is a 32-bit IP address as carried in the establishment frames.
type IPv4 [4]byte

// String implements fmt.Stringer ("a.b.c.d").
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", ip[0], ip[1], ip[2], ip[3])
}

// NodeIP returns the deterministic address 10.82.x.y assigned to node n.
func NodeIP(n uint16) IPv4 {
	return IPv4{10, 82, byte(n >> 8), byte(n)}
}

// EtherTypes used by the RT layer. RT data travels as ordinary IPv4; the
// establishment protocol uses a dedicated experimental EtherType so that
// unmodified stacks ignore it.
const (
	EtherTypeIPv4      = 0x0800
	EtherTypeRTControl = 0x88D7
)

// Physical size constants (bytes). One timeslot is the transmission time
// of one maximal frame: MaxFrame plus preamble and inter-frame gap.
const (
	HeaderLen      = 14                         // dst MAC + src MAC + EtherType
	MaxPayload     = 1500                       // standard Ethernet MTU
	MinPayload     = 46                         // minimum payload (frames are padded up)
	MaxFrame       = HeaderLen + MaxPayload + 4 // incl. FCS
	PreambleAndGap = 8 + 12
	SlotBytes      = MaxFrame + PreambleAndGap
)

// SlotNanos returns the duration of one timeslot in nanoseconds on a link
// of the given rate in megabits per second (e.g. 100 for Fast Ethernet).
func SlotNanos(mbps int64) int64 {
	return SlotBytes * 8 * 1000 / mbps
}

// Header is the Ethernet MAC header common to every frame.
type Header struct {
	Dst, Src  MAC
	EtherType uint16
}

// Decoding errors.
var (
	ErrTruncated     = errors.New("frame: truncated")
	ErrEtherType     = errors.New("frame: unexpected EtherType")
	ErrControlType   = errors.New("frame: unknown RT control type")
	ErrNotRTData     = errors.New("frame: not an RT data frame (ToS != 255)")
	ErrBadIPVersion  = errors.New("frame: unsupported IP version/IHL")
	ErrBadChecksum   = errors.New("frame: IP header checksum mismatch")
	ErrBadLength     = errors.New("frame: inconsistent length fields")
	ErrDeadlineRange = errors.New("frame: absolute deadline exceeds 48 bits")
	ErrPayloadSize   = errors.New("frame: payload exceeds MTU")
)

// putHeader writes the 14-byte Ethernet header.
func putHeader(b []byte, h Header) {
	copy(b[0:6], h.Dst[:])
	copy(b[6:12], h.Src[:])
	binary.BigEndian.PutUint16(b[12:14], h.EtherType)
}

// ParseHeader reads the Ethernet header of a raw frame.
func ParseHeader(b []byte) (Header, error) {
	if len(b) < HeaderLen {
		return Header{}, fmt.Errorf("%w: %d bytes, need %d", ErrTruncated, len(b), HeaderLen)
	}
	var h Header
	copy(h.Dst[:], b[0:6])
	copy(h.Src[:], b[6:12])
	h.EtherType = binary.BigEndian.Uint16(b[12:14])
	return h, nil
}

// Kind classifies a raw frame for the RT layer's input demultiplexing.
type Kind int

const (
	// KindOther: anything the RT layer passes through untouched
	// (non-real-time TCP/IP traffic).
	KindOther Kind = iota
	// KindRTData: an IPv4 frame with ToS 255 — an RT channel datagram.
	KindRTData
	// KindConnect: an establishment RequestFrame.
	KindConnect
	// KindResponse: an establishment ResponseFrame.
	KindResponse
	// KindTeardown: a channel release frame (extension).
	KindTeardown
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindOther:
		return "other"
	case KindRTData:
		return "rt-data"
	case KindConnect:
		return "connect"
	case KindResponse:
		return "response"
	case KindTeardown:
		return "teardown"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Classify inspects a raw frame just enough to route it inside the RT
// layer: EtherType plus, for IPv4, the ToS field (§18.2.2: ToS 255 marks
// RT traffic; other values are reserved for future services).
func Classify(b []byte) Kind {
	h, err := ParseHeader(b)
	if err != nil {
		return KindOther
	}
	switch h.EtherType {
	case EtherTypeRTControl:
		if len(b) > HeaderLen {
			switch b[HeaderLen] {
			case controlTypeConnect:
				return KindConnect
			case controlTypeResponse:
				return KindResponse
			case controlTypeTeardown:
				return KindTeardown
			}
		}
		return KindOther
	case EtherTypeIPv4:
		// ToS is the second byte of the IP header.
		if len(b) >= HeaderLen+2 && b[HeaderLen+1] == rtTOS {
			return KindRTData
		}
		return KindOther
	default:
		return KindOther
	}
}
