package frame

import (
	"bytes"
	"errors"
	"testing"
)

func TestPlainRoundTrip(t *testing.T) {
	p := Plain{
		SrcMAC:  NodeMAC(1),
		DstMAC:  NodeMAC(2),
		SrcIP:   NodeIP(1),
		DstIP:   NodeIP(2),
		Payload: []byte("hello tcp world"),
	}
	b, err := EncodePlain(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodePlain(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcMAC != p.SrcMAC || got.DstMAC != p.DstMAC ||
		got.SrcIP != p.SrcIP || got.DstIP != p.DstIP ||
		!bytes.Equal(got.Payload, p.Payload) {
		t.Errorf("round trip mismatch: %+v vs %+v", got, p)
	}
}

func TestPlainClassifiesAsOther(t *testing.T) {
	b, err := EncodePlain(Plain{SrcMAC: NodeMAC(1), DstMAC: NodeMAC(2)})
	if err != nil {
		t.Fatal(err)
	}
	if got := Classify(b); got != KindOther {
		t.Errorf("plain frame classified as %v, want other", got)
	}
}

func TestPlainPayloadTooBig(t *testing.T) {
	p := Plain{Payload: make([]byte, MaxDataPayload+1)}
	if _, err := EncodePlain(p); !errors.Is(err, ErrPayloadSize) {
		t.Errorf("oversize: %v, want ErrPayloadSize", err)
	}
}

func TestPlainChecksumValidated(t *testing.T) {
	b, _ := EncodePlain(Plain{SrcMAC: NodeMAC(1), DstMAC: NodeMAC(2), Payload: []byte("x")})
	b[HeaderLen+13] ^= 0x01
	if _, err := DecodePlain(b); !errors.Is(err, ErrBadChecksum) {
		t.Errorf("tampered plain frame: %v, want ErrBadChecksum", err)
	}
}

func TestPlainTruncation(t *testing.T) {
	b, _ := EncodePlain(Plain{SrcMAC: NodeMAC(1), DstMAC: NodeMAC(2)})
	if _, err := DecodePlain(b[:HeaderLen+8]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v, want ErrTruncated", err)
	}
}
