package frame

import (
	"encoding/binary"
	"fmt"
)

// Plain is an ordinary (non-real-time) IPv4/UDP frame as produced by an
// unmodified TCP/IP stack above the RT layer. Its ToS is zero, so the RT
// layer classifies it as KindOther and routes it through the FCFS queues
// (§18.2.1). The simulator uses it for background best-effort traffic.
type Plain struct {
	SrcMAC, DstMAC MAC
	SrcIP, DstIP   IPv4
	Payload        []byte
}

// EncodePlain serializes a best-effort datagram.
func EncodePlain(p Plain) ([]byte, error) {
	if len(p.Payload) > MaxDataPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadSize, len(p.Payload), MaxDataPayload)
	}
	total := ipHeaderLen + udpHeaderLen + len(p.Payload)
	b := make([]byte, HeaderLen+total)
	putHeader(b, Header{Dst: p.DstMAC, Src: p.SrcMAC, EtherType: EtherTypeIPv4})

	ip := b[HeaderLen : HeaderLen+ipHeaderLen]
	ip[0] = 0x45
	ip[1] = 0 // best-effort ToS
	binary.BigEndian.PutUint16(ip[2:4], uint16(total))
	ip[8] = defaultTTL
	ip[9] = protoUDP
	copy(ip[12:16], p.SrcIP[:])
	copy(ip[16:20], p.DstIP[:])
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip))

	udp := b[HeaderLen+ipHeaderLen:]
	binary.BigEndian.PutUint16(udp[4:6], uint16(udpHeaderLen+len(p.Payload)))
	copy(udp[8:], p.Payload)
	return b, nil
}

// DecodePlain parses a best-effort IPv4 frame. RT data frames (ToS 255)
// are rejected with ErrNotRTData's counterpart semantics: callers should
// Classify first.
func DecodePlain(b []byte) (Plain, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return Plain{}, err
	}
	if h.EtherType != EtherTypeIPv4 {
		return Plain{}, fmt.Errorf("%w: 0x%04x", ErrEtherType, h.EtherType)
	}
	if len(b) < HeaderLen+ipHeaderLen+udpHeaderLen {
		return Plain{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	ip := b[HeaderLen : HeaderLen+ipHeaderLen]
	if ip[0] != 0x45 {
		return Plain{}, fmt.Errorf("%w: 0x%02x", ErrBadIPVersion, ip[0])
	}
	if Checksum(ip) != 0 {
		return Plain{}, ErrBadChecksum
	}
	total := int(binary.BigEndian.Uint16(ip[2:4]))
	if total < ipHeaderLen+udpHeaderLen || HeaderLen+total > len(b) {
		return Plain{}, fmt.Errorf("%w: IP total length %d, frame %d", ErrBadLength, total, len(b))
	}
	p := Plain{SrcMAC: h.Src, DstMAC: h.Dst}
	copy(p.SrcIP[:], ip[12:16])
	copy(p.DstIP[:], ip[16:20])
	udp := b[HeaderLen+ipHeaderLen : HeaderLen+total]
	if payload := udp[8:]; len(payload) > 0 {
		p.Payload = append([]byte(nil), payload...)
	}
	return p, nil
}
