package frame

import (
	"errors"
	"strings"
	"testing"
)

func TestNodeMACDeterministicAndDistinct(t *testing.T) {
	seen := make(map[MAC]bool)
	for n := uint16(0); n < 300; n++ {
		m := NodeMAC(n)
		if seen[m] {
			t.Fatalf("NodeMAC(%d) = %v collides", n, m)
		}
		seen[m] = true
		if m[0]&0x02 == 0 {
			t.Fatalf("NodeMAC(%d) = %v not locally administered", n, m)
		}
		if m == SwitchMAC {
			t.Fatalf("NodeMAC(%d) collides with SwitchMAC", n)
		}
	}
	if NodeMAC(7) != NodeMAC(7) {
		t.Error("NodeMAC not deterministic")
	}
}

func TestMACAndIPString(t *testing.T) {
	m := MAC{0x02, 0x52, 0x54, 0x00, 0x01, 0x0a}
	if got := m.String(); got != "02:52:54:00:01:0a" {
		t.Errorf("MAC.String() = %q", got)
	}
	ip := IPv4{10, 82, 0, 7}
	if got := ip.String(); got != "10.82.0.7" {
		t.Errorf("IPv4.String() = %q", got)
	}
	if NodeIP(7) != ip {
		t.Errorf("NodeIP(7) = %v, want %v", NodeIP(7), ip)
	}
}

func TestSlotNanos(t *testing.T) {
	// 1538 bytes on wire * 8 bits = 12304 bits; at 100 Mbit/s that is
	// 123040 ns.
	if got := SlotNanos(100); got != 123040 {
		t.Errorf("SlotNanos(100) = %d, want 123040", got)
	}
	// Gigabit: one tenth.
	if got := SlotNanos(1000); got != 12304 {
		t.Errorf("SlotNanos(1000) = %d, want 12304", got)
	}
}

func TestParseHeaderRoundTrip(t *testing.T) {
	h := Header{Dst: NodeMAC(2), Src: NodeMAC(1), EtherType: EtherTypeIPv4}
	b := make([]byte, HeaderLen)
	putHeader(b, h)
	got, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("ParseHeader = %+v, want %+v", got, h)
	}
	if _, err := ParseHeader(b[:13]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short header err = %v, want ErrTruncated", err)
	}
}

func TestClassify(t *testing.T) {
	req := Request{SrcMAC: NodeMAC(1), DstMAC: NodeMAC(2)}.Encode()
	resp := Response{Channel: 3, Accept: true}.Encode(NodeMAC(1))
	data, err := EncodeData(Data{SrcMAC: NodeMAC(1), DstMAC: NodeMAC(2), Deadline: 100, Channel: 3})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		b    []byte
		want Kind
	}{
		{"connect", req, KindConnect},
		{"response", resp, KindResponse},
		{"rt data", data, KindRTData},
		{"empty", nil, KindOther},
		{"short", data[:10], KindOther},
	}
	for _, tc := range cases {
		if got := Classify(tc.b); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}

	// Plain IPv4 with a normal ToS must pass through as non-RT.
	plain := append([]byte(nil), data...)
	plain[HeaderLen+1] = 0 // ToS
	if got := Classify(plain); got != KindOther {
		t.Errorf("Classify(plain IPv4) = %v, want other", got)
	}

	// Unknown control subtype.
	bogus := append([]byte(nil), req...)
	bogus[HeaderLen] = 0x7F
	if got := Classify(bogus); got != KindOther {
		t.Errorf("Classify(bogus control) = %v, want other", got)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindOther: "other", KindRTData: "rt-data",
		KindConnect: "connect", KindResponse: "response",
		Kind(9): "kind(9)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestFrameSizesMatchFigures(t *testing.T) {
	// Fig. 18.3 field widths: 8+48+48+32+32+32+32+32+16+8 = 288 bits = 36 B.
	if requestBodyLen != 36 {
		t.Errorf("request body = %d bytes, want 36 per Fig. 18.3", requestBodyLen)
	}
	// Fig. 18.4: 8+16+1(+pad to byte)+8 = 5 B with the 1-bit response in
	// its own byte.
	if responseBodyLen != 5 {
		t.Errorf("response body = %d bytes, want 5 per Fig. 18.4", responseBodyLen)
	}
}

func TestKindAndDirectionStringsStable(t *testing.T) {
	if !strings.Contains(KindRTData.String(), "rt") {
		t.Error("KindRTData string changed")
	}
}
