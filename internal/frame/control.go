package frame

import (
	"encoding/binary"
	"fmt"
)

// Control frame type codes (the 8-bit Type field of Figs. 18.3/18.4).
// Teardown is this library's extension: the paper defines dynamic channel
// establishment but no wire format for release; a deployable system needs
// both, so type 0x03 is allocated from the same Type space.
const (
	controlTypeConnect  = 0x01
	controlTypeResponse = 0x02
	controlTypeTeardown = 0x03
)

// Request is the connection request of Fig. 18.3. The Ethernet destination
// is always the switch; the frame body carries the endpoint addresses of
// the requested RT channel and its {P, C, d} triple. The RT channel ID
// field is zero in the source→switch leg and is filled in by the switch
// (with a network-unique ID) before forwarding to the destination node.
type Request struct {
	SrcMAC   MAC    // MAC source address field (requesting node)
	DstMAC   MAC    // MAC destination address field (channel destination)
	SrcIP    IPv4   // IP source address
	DstIP    IPv4   // IP destination address
	Period   uint32 // Tperiod, slots
	Capacity uint32 // C, maximal-sized frames per period
	Deadline uint32 // Tdeadline, slots
	Channel  uint16 // RT channel ID (0 until assigned by the switch)
	ReqID    uint8  // connection request ID, source-node unique
}

// requestBodyLen is the encoded body size:
// type(1) + dstMAC(6) + srcMAC(6) + srcIP(4) + dstIP(4) +
// period(4) + C(4) + deadline(4) + channel(2) + reqID(1).
const requestBodyLen = 1 + 6 + 6 + 4 + 4 + 4 + 4 + 4 + 2 + 1

// Encode serializes the request into a full Ethernet frame addressed to
// the switch, per Fig. 18.3.
func (r Request) Encode() []byte {
	b := make([]byte, HeaderLen+requestBodyLen)
	putHeader(b, Header{Dst: SwitchMAC, Src: r.SrcMAC, EtherType: EtherTypeRTControl})
	p := b[HeaderLen:]
	p[0] = controlTypeConnect
	copy(p[1:7], r.DstMAC[:])
	copy(p[7:13], r.SrcMAC[:])
	copy(p[13:17], r.SrcIP[:])
	copy(p[17:21], r.DstIP[:])
	binary.BigEndian.PutUint32(p[21:25], r.Period)
	binary.BigEndian.PutUint32(p[25:29], r.Capacity)
	binary.BigEndian.PutUint32(p[29:33], r.Deadline)
	binary.BigEndian.PutUint16(p[33:35], r.Channel)
	p[35] = r.ReqID
	return b
}

// DecodeRequest parses a RequestFrame.
func DecodeRequest(b []byte) (Request, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return Request{}, err
	}
	if h.EtherType != EtherTypeRTControl {
		return Request{}, fmt.Errorf("%w: 0x%04x", ErrEtherType, h.EtherType)
	}
	if len(b) < HeaderLen+requestBodyLen {
		return Request{}, fmt.Errorf("%w: request body %d bytes, need %d",
			ErrTruncated, len(b)-HeaderLen, requestBodyLen)
	}
	p := b[HeaderLen:]
	if p[0] != controlTypeConnect {
		return Request{}, fmt.Errorf("%w: type 0x%02x, want connect", ErrControlType, p[0])
	}
	var r Request
	copy(r.DstMAC[:], p[1:7])
	copy(r.SrcMAC[:], p[7:13])
	copy(r.SrcIP[:], p[13:17])
	copy(r.DstIP[:], p[17:21])
	r.Period = binary.BigEndian.Uint32(p[21:25])
	r.Capacity = binary.BigEndian.Uint32(p[25:29])
	r.Deadline = binary.BigEndian.Uint32(p[29:33])
	r.Channel = binary.BigEndian.Uint16(p[33:35])
	r.ReqID = p[35]
	return r, nil
}

// Teardown releases an established RT channel (extension, see the Type
// constants). The source node sends it to the switch; the switch frees
// the channel's reservation and forwards the frame to the destination so
// its RT layer can drop per-channel state.
type Teardown struct {
	SrcMAC  MAC    // requesting node (must be the channel's source)
	Channel uint16 // RT channel ID to release
}

// teardownBodyLen: type(1) + channel(2).
const teardownBodyLen = 1 + 2

// Encode serializes the teardown into a full Ethernet frame addressed to
// the switch.
func (t Teardown) Encode() []byte {
	b := make([]byte, HeaderLen+teardownBodyLen)
	putHeader(b, Header{Dst: SwitchMAC, Src: t.SrcMAC, EtherType: EtherTypeRTControl})
	p := b[HeaderLen:]
	p[0] = controlTypeTeardown
	binary.BigEndian.PutUint16(p[1:3], t.Channel)
	return b
}

// DecodeTeardown parses a teardown frame.
func DecodeTeardown(b []byte) (Teardown, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return Teardown{}, err
	}
	if h.EtherType != EtherTypeRTControl {
		return Teardown{}, fmt.Errorf("%w: 0x%04x", ErrEtherType, h.EtherType)
	}
	if len(b) < HeaderLen+teardownBodyLen {
		return Teardown{}, fmt.Errorf("%w: teardown body %d bytes, need %d",
			ErrTruncated, len(b)-HeaderLen, teardownBodyLen)
	}
	p := b[HeaderLen:]
	if p[0] != controlTypeTeardown {
		return Teardown{}, fmt.Errorf("%w: type 0x%02x, want teardown", ErrControlType, p[0])
	}
	return Teardown{SrcMAC: h.Src, Channel: binary.BigEndian.Uint16(p[1:3])}, nil
}

// Response is the connection response of Fig. 18.4, sent by the
// destination node (accept/reject) or directly by the switch (reject
// after a failed feasibility test). The Ethernet source address is the
// switch when it forwards or originates the response.
type Response struct {
	Channel uint16 // RT channel ID assigned by the switch
	Accept  bool   // Response field: 1 = OK, 0 = Not OK
	ReqID   uint8  // echoes the connection request ID
}

// responseBodyLen: type(1) + channel(2) + response(1) + reqID(1). The
// paper's response field is a single bit; it occupies the low bit of one
// byte on the wire.
const responseBodyLen = 1 + 2 + 1 + 1

// Encode serializes the response into a full Ethernet frame from the
// switch to dst, per Fig. 18.4.
func (r Response) Encode(dst MAC) []byte {
	b := make([]byte, HeaderLen+responseBodyLen)
	putHeader(b, Header{Dst: dst, Src: SwitchMAC, EtherType: EtherTypeRTControl})
	p := b[HeaderLen:]
	p[0] = controlTypeResponse
	binary.BigEndian.PutUint16(p[1:3], r.Channel)
	if r.Accept {
		p[3] = 1
	}
	p[4] = r.ReqID
	return b
}

// DecodeResponse parses a ResponseFrame.
func DecodeResponse(b []byte) (Response, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return Response{}, err
	}
	if h.EtherType != EtherTypeRTControl {
		return Response{}, fmt.Errorf("%w: 0x%04x", ErrEtherType, h.EtherType)
	}
	if len(b) < HeaderLen+responseBodyLen {
		return Response{}, fmt.Errorf("%w: response body %d bytes, need %d",
			ErrTruncated, len(b)-HeaderLen, responseBodyLen)
	}
	p := b[HeaderLen:]
	if p[0] != controlTypeResponse {
		return Response{}, fmt.Errorf("%w: type 0x%02x, want response", ErrControlType, p[0])
	}
	return Response{
		Channel: binary.BigEndian.Uint16(p[1:3]),
		Accept:  p[3]&1 == 1,
		ReqID:   p[4],
	}, nil
}
