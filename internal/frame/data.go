package frame

import (
	"encoding/binary"
	"fmt"
)

// rtTOS is the Type-of-Service value that marks RT traffic (§18.2.2:
// "The Type of Service (ToS) field is always set to value 255. Other
// values than 255 in the ToS field can be used for future services.")
const rtTOS = 0xFF

// RTTOS exposes the marker for tests and documentation.
const RTTOS = rtTOS

const (
	ipHeaderLen  = 20
	udpHeaderLen = 8
	protoUDP     = 17
	defaultTTL   = 64
	// MaxDeadline is the largest absolute deadline the stamped header can
	// carry: 48 bits across the IP source address and the upper half of
	// the IP destination address.
	MaxDeadline = (int64(1) << 48) - 1
	// MaxDataPayload is the UDP payload capacity of one RT data frame.
	MaxDataPayload = MaxPayload - ipHeaderLen - udpHeaderLen
)

// Data is one RT channel datagram as it appears on the wire after the RT
// layer has rewritten the IP header (§18.2.2): the IP source address and
// the 16 most significant bits of the IP destination address together
// carry the 48-bit absolute deadline, the 16 least significant bits of
// the IP destination carry the RT channel ID, and ToS is 255.
type Data struct {
	SrcMAC   MAC
	DstMAC   MAC
	Deadline int64  // absolute deadline in slots; 0 <= Deadline <= MaxDeadline
	Channel  uint16 // RT channel ID
	Payload  []byte // UDP payload (application data)
}

// EncodeData serializes the datagram into a full Ethernet frame.
func EncodeData(d Data) ([]byte, error) {
	if d.Deadline < 0 || d.Deadline > MaxDeadline {
		return nil, fmt.Errorf("%w: %d", ErrDeadlineRange, d.Deadline)
	}
	if len(d.Payload) > MaxDataPayload {
		return nil, fmt.Errorf("%w: %d > %d", ErrPayloadSize, len(d.Payload), MaxDataPayload)
	}
	total := ipHeaderLen + udpHeaderLen + len(d.Payload)
	b := make([]byte, HeaderLen+total)
	putHeader(b, Header{Dst: d.DstMAC, Src: d.SrcMAC, EtherType: EtherTypeIPv4})

	ip := b[HeaderLen : HeaderLen+ipHeaderLen]
	ip[0] = 0x45 // IPv4, 20-byte header
	ip[1] = rtTOS
	binary.BigEndian.PutUint16(ip[2:4], uint16(total))
	// Identification, flags, fragment offset: zero (RT frames never
	// fragment — they fit one slot by construction).
	ip[8] = defaultTTL
	ip[9] = protoUDP
	// Deadline stamping: src IP = deadline bits 47..16; dst IP high 16 =
	// deadline bits 15..0; dst IP low 16 = RT channel ID.
	binary.BigEndian.PutUint32(ip[12:16], uint32(d.Deadline>>16))
	binary.BigEndian.PutUint16(ip[16:18], uint16(d.Deadline&0xFFFF))
	binary.BigEndian.PutUint16(ip[18:20], d.Channel)
	binary.BigEndian.PutUint16(ip[10:12], Checksum(ip))

	udp := b[HeaderLen+ipHeaderLen:]
	// Ports are unused by the RT layer; carry the channel ID for
	// debuggability (real stacks would keep application ports).
	binary.BigEndian.PutUint16(udp[0:2], d.Channel)
	binary.BigEndian.PutUint16(udp[2:4], d.Channel)
	binary.BigEndian.PutUint16(udp[4:6], uint16(udpHeaderLen+len(d.Payload)))
	copy(udp[8:], d.Payload)
	return b, nil
}

// DecodeData parses an RT data frame, validating the IP version, ToS
// marker, header checksum and length fields.
func DecodeData(b []byte) (Data, error) {
	h, err := ParseHeader(b)
	if err != nil {
		return Data{}, err
	}
	if h.EtherType != EtherTypeIPv4 {
		return Data{}, fmt.Errorf("%w: 0x%04x", ErrEtherType, h.EtherType)
	}
	if len(b) < HeaderLen+ipHeaderLen+udpHeaderLen {
		return Data{}, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	ip := b[HeaderLen : HeaderLen+ipHeaderLen]
	if ip[0] != 0x45 {
		return Data{}, fmt.Errorf("%w: 0x%02x", ErrBadIPVersion, ip[0])
	}
	if ip[1] != rtTOS {
		return Data{}, fmt.Errorf("%w: ToS=%d", ErrNotRTData, ip[1])
	}
	if Checksum(ip) != 0 {
		// A correct header checksums to zero when the checksum field is
		// included in the sum.
		return Data{}, ErrBadChecksum
	}
	total := int(binary.BigEndian.Uint16(ip[2:4]))
	if total < ipHeaderLen+udpHeaderLen || HeaderLen+total > len(b) {
		return Data{}, fmt.Errorf("%w: IP total length %d, frame %d", ErrBadLength, total, len(b))
	}
	udp := b[HeaderLen+ipHeaderLen : HeaderLen+total]
	udpLen := int(binary.BigEndian.Uint16(udp[4:6]))
	if udpLen != len(udp) {
		return Data{}, fmt.Errorf("%w: UDP length %d, available %d", ErrBadLength, udpLen, len(udp))
	}

	deadline := int64(binary.BigEndian.Uint32(ip[12:16]))<<16 |
		int64(binary.BigEndian.Uint16(ip[16:18]))
	d := Data{
		SrcMAC:   h.Src,
		DstMAC:   h.Dst,
		Deadline: deadline,
		Channel:  binary.BigEndian.Uint16(ip[18:20]),
	}
	if payload := udp[8:]; len(payload) > 0 {
		d.Payload = append([]byte(nil), payload...)
	}
	return d, nil
}

// PeekDeadline extracts the stamped absolute deadline and channel ID
// without a full decode — this is the fast path the switch output stage
// uses to insert a frame into the deadline-sorted queue.
func PeekDeadline(b []byte) (deadline int64, channel uint16, err error) {
	if len(b) < HeaderLen+ipHeaderLen {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrTruncated, len(b))
	}
	ip := b[HeaderLen : HeaderLen+ipHeaderLen]
	if ip[1] != rtTOS {
		return 0, 0, fmt.Errorf("%w: ToS=%d", ErrNotRTData, ip[1])
	}
	deadline = int64(binary.BigEndian.Uint32(ip[12:16]))<<16 |
		int64(binary.BigEndian.Uint16(ip[16:18]))
	channel = binary.BigEndian.Uint16(ip[18:20])
	return deadline, channel, nil
}

// Checksum computes the RFC 791 ones'-complement header checksum. Over a
// header whose checksum field is already filled in, a correct header sums
// to zero.
func Checksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	if len(hdr)%2 == 1 {
		sum += uint32(hdr[len(hdr)-1]) << 8
	}
	for sum > 0xFFFF {
		sum = (sum & 0xFFFF) + (sum >> 16)
	}
	return ^uint16(sum)
}
