package frame

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"
	"testing/quick"
)

func sampleData() Data {
	return Data{
		SrcMAC:   NodeMAC(1),
		DstMAC:   NodeMAC(108),
		Deadline: 123456,
		Channel:  42,
		Payload:  []byte("sensor reading 17"),
	}
}

func TestDataRoundTrip(t *testing.T) {
	d := sampleData()
	b, err := EncodeData(d)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeData(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.SrcMAC != d.SrcMAC || got.DstMAC != d.DstMAC ||
		got.Deadline != d.Deadline || got.Channel != d.Channel ||
		!bytes.Equal(got.Payload, d.Payload) {
		t.Errorf("round trip: got %+v, want %+v", got, d)
	}
}

func TestDataRoundTripProperty(t *testing.T) {
	f := func(src, dst uint16, deadlineBits uint64, ch uint16, payload []byte) bool {
		if len(payload) > MaxDataPayload {
			payload = payload[:MaxDataPayload]
		}
		d := Data{
			SrcMAC:   NodeMAC(src),
			DstMAC:   NodeMAC(dst),
			Deadline: int64(deadlineBits % (1 << 48)),
			Channel:  ch,
			Payload:  payload,
		}
		b, err := EncodeData(d)
		if err != nil {
			return false
		}
		got, err := DecodeData(b)
		return err == nil &&
			got.Deadline == d.Deadline &&
			got.Channel == d.Channel &&
			bytes.Equal(got.Payload, d.Payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDataStampLayoutMatchesPaper(t *testing.T) {
	// §18.2.2: IP source address (32 bits) = deadline bits 47..16; the 16
	// MSB of the IP destination = deadline bits 15..0; the 16 LSB of the
	// IP destination = RT channel ID; ToS = 255.
	d := Data{
		SrcMAC:   NodeMAC(1),
		DstMAC:   NodeMAC(2),
		Deadline: 0x0000_A1B2_C3D4,
		Channel:  0xBEEF,
	}
	b, err := EncodeData(d)
	if err != nil {
		t.Fatal(err)
	}
	ip := b[HeaderLen : HeaderLen+20]
	if ip[1] != 255 {
		t.Errorf("ToS = %d, want 255", ip[1])
	}
	if src := binary.BigEndian.Uint32(ip[12:16]); src != 0x0000A1B2 {
		t.Errorf("IP src = %08x, want deadline[47:16]", src)
	}
	if hi := binary.BigEndian.Uint16(ip[16:18]); hi != 0xC3D4 {
		t.Errorf("IP dst high = %04x, want deadline[15:0]", hi)
	}
	if lo := binary.BigEndian.Uint16(ip[18:20]); lo != 0xBEEF {
		t.Errorf("IP dst low = %04x, want channel ID", lo)
	}
}

func TestDataDeadlineBounds(t *testing.T) {
	d := sampleData()
	d.Deadline = MaxDeadline
	if _, err := EncodeData(d); err != nil {
		t.Errorf("MaxDeadline rejected: %v", err)
	}
	d.Deadline = MaxDeadline + 1
	if _, err := EncodeData(d); !errors.Is(err, ErrDeadlineRange) {
		t.Errorf("over-range deadline: %v, want ErrDeadlineRange", err)
	}
	d.Deadline = -1
	if _, err := EncodeData(d); !errors.Is(err, ErrDeadlineRange) {
		t.Errorf("negative deadline: %v, want ErrDeadlineRange", err)
	}
}

func TestDataPayloadTooBig(t *testing.T) {
	d := sampleData()
	d.Payload = make([]byte, MaxDataPayload+1)
	if _, err := EncodeData(d); !errors.Is(err, ErrPayloadSize) {
		t.Errorf("oversize payload: %v, want ErrPayloadSize", err)
	}
	d.Payload = make([]byte, MaxDataPayload)
	if _, err := EncodeData(d); err != nil {
		t.Errorf("max payload rejected: %v", err)
	}
}

func TestDataChecksumTamperDetected(t *testing.T) {
	b, err := EncodeData(sampleData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeData(b); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	for _, idx := range []int{HeaderLen + 1, HeaderLen + 12, HeaderLen + 19} {
		tampered := append([]byte(nil), b...)
		tampered[idx] ^= 0x40
		if _, err := DecodeData(tampered); err == nil {
			t.Errorf("tampering byte %d went undetected", idx)
		}
	}
}

func TestDecodeDataErrors(t *testing.T) {
	good, _ := EncodeData(sampleData())

	if _, err := DecodeData(good[:HeaderLen+10]); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated: %v, want ErrTruncated", err)
	}

	wrongEther := append([]byte(nil), good...)
	wrongEther[12], wrongEther[13] = 0x88, 0xD7
	if _, err := DecodeData(wrongEther); !errors.Is(err, ErrEtherType) {
		t.Errorf("wrong EtherType: %v, want ErrEtherType", err)
	}

	wrongVer := append([]byte(nil), good...)
	wrongVer[HeaderLen] = 0x46
	if _, err := DecodeData(wrongVer); !errors.Is(err, ErrBadIPVersion) && !errors.Is(err, ErrBadChecksum) {
		t.Errorf("wrong version: %v", err)
	}

	// Rewrite ToS and fix the checksum: must fail with ErrNotRTData.
	plain := append([]byte(nil), good...)
	plain[HeaderLen+1] = 0
	plain[HeaderLen+10], plain[HeaderLen+11] = 0, 0
	ck := Checksum(plain[HeaderLen : HeaderLen+20])
	binary.BigEndian.PutUint16(plain[HeaderLen+10:HeaderLen+12], ck)
	if _, err := DecodeData(plain); !errors.Is(err, ErrNotRTData) {
		t.Errorf("plain ToS: %v, want ErrNotRTData", err)
	}
}

func TestPeekDeadline(t *testing.T) {
	d := sampleData()
	b, _ := EncodeData(d)
	deadline, ch, err := PeekDeadline(b)
	if err != nil {
		t.Fatal(err)
	}
	if deadline != d.Deadline || ch != d.Channel {
		t.Errorf("PeekDeadline = (%d, %d), want (%d, %d)", deadline, ch, d.Deadline, d.Channel)
	}
	if _, _, err := PeekDeadline(b[:HeaderLen+5]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short peek: %v, want ErrTruncated", err)
	}
	b[HeaderLen+1] = 7
	if _, _, err := PeekDeadline(b); !errors.Is(err, ErrNotRTData) {
		t.Errorf("non-RT peek: %v, want ErrNotRTData", err)
	}
}

func TestChecksumKnownVector(t *testing.T) {
	// Classic example header from RFC 1071 discussions.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	ck := Checksum(hdr)
	if ck != 0xb861 {
		t.Errorf("Checksum = %04x, want b861", ck)
	}
	binary.BigEndian.PutUint16(hdr[10:12], ck)
	if Checksum(hdr) != 0 {
		t.Error("header with correct checksum does not sum to zero")
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd-length buffers pad the trailing byte with zero.
	odd := []byte{0x12, 0x34, 0x56}
	want := ^uint16(0x1234 + 0x5600)
	if got := Checksum(odd); got != want {
		t.Errorf("odd Checksum = %04x, want %04x", got, want)
	}
}
