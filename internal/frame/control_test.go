package frame

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestRequestRoundTrip(t *testing.T) {
	r := Request{
		SrcMAC:   NodeMAC(3),
		DstMAC:   NodeMAC(108),
		SrcIP:    NodeIP(3),
		DstIP:    NodeIP(108),
		Period:   100,
		Capacity: 3,
		Deadline: 40,
		Channel:  0,
		ReqID:    7,
	}
	b := r.Encode()
	h, err := ParseHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	if h.Dst != SwitchMAC {
		t.Errorf("request Ethernet dst = %v, want switch", h.Dst)
	}
	if h.Src != r.SrcMAC {
		t.Errorf("request Ethernet src = %v, want node", h.Src)
	}
	got, err := DecodeRequest(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip: got %+v, want %+v", got, r)
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(src, dst uint16, p, c, d uint32, ch uint16, reqID uint8) bool {
		r := Request{
			SrcMAC: NodeMAC(src), DstMAC: NodeMAC(dst),
			SrcIP: NodeIP(src), DstIP: NodeIP(dst),
			Period: p, Capacity: c, Deadline: d,
			Channel: ch, ReqID: reqID,
		}
		got, err := DecodeRequest(r.Encode())
		return err == nil && got == r
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	good := Request{SrcMAC: NodeMAC(1)}.Encode()

	short := good[:HeaderLen+requestBodyLen-1]
	if _, err := DecodeRequest(short); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v, want ErrTruncated", err)
	}

	wrongType := append([]byte(nil), good...)
	wrongType[12], wrongType[13] = 0x08, 0x00 // IPv4 ethertype
	if _, err := DecodeRequest(wrongType); !errors.Is(err, ErrEtherType) {
		t.Errorf("wrong EtherType: %v, want ErrEtherType", err)
	}

	wrongSub := append([]byte(nil), good...)
	wrongSub[HeaderLen] = controlTypeResponse
	if _, err := DecodeRequest(wrongSub); !errors.Is(err, ErrControlType) {
		t.Errorf("wrong subtype: %v, want ErrControlType", err)
	}
}

func TestTeardownRoundTrip(t *testing.T) {
	td := Teardown{SrcMAC: NodeMAC(7), Channel: 999}
	b := td.Encode()
	if Classify(b) != KindTeardown {
		t.Fatalf("teardown classified as %v", Classify(b))
	}
	got, err := DecodeTeardown(b)
	if err != nil {
		t.Fatal(err)
	}
	if got != td {
		t.Errorf("round trip: %+v vs %+v", got, td)
	}
	h, _ := ParseHeader(b)
	if h.Dst != SwitchMAC {
		t.Errorf("teardown dst = %v, want switch", h.Dst)
	}
}

func TestDecodeTeardownErrors(t *testing.T) {
	good := Teardown{SrcMAC: NodeMAC(1), Channel: 5}.Encode()
	if _, err := DecodeTeardown(good[:HeaderLen+1]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v", err)
	}
	wrongSub := append([]byte(nil), good...)
	wrongSub[HeaderLen] = controlTypeConnect
	if _, err := DecodeTeardown(wrongSub); !errors.Is(err, ErrControlType) {
		t.Errorf("wrong subtype: %v", err)
	}
	wrongType := append([]byte(nil), good...)
	wrongType[12], wrongType[13] = 0x08, 0x00
	if _, err := DecodeTeardown(wrongType); !errors.Is(err, ErrEtherType) {
		t.Errorf("wrong EtherType: %v", err)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, accept := range []bool{true, false} {
		r := Response{Channel: 42, Accept: accept, ReqID: 9}
		b := r.Encode(NodeMAC(5))
		h, _ := ParseHeader(b)
		if h.Src != SwitchMAC {
			t.Errorf("response Ethernet src = %v, want switch (Fig. 18.4)", h.Src)
		}
		if h.Dst != NodeMAC(5) {
			t.Errorf("response Ethernet dst = %v", h.Dst)
		}
		got, err := DecodeResponse(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Errorf("round trip: got %+v, want %+v", got, r)
		}
	}
}

func TestResponseAcceptBitIsSingleBit(t *testing.T) {
	// Only the low bit of the response byte is significant; a sloppy
	// sender setting extra bits must still decode by bit 0.
	b := Response{Channel: 1, Accept: true, ReqID: 2}.Encode(NodeMAC(1))
	b[HeaderLen+3] = 0xFF
	got, err := DecodeResponse(b)
	if err != nil || !got.Accept {
		t.Errorf("decode = %+v, %v; want accept from bit 0", got, err)
	}
	b[HeaderLen+3] = 0xFE
	got, err = DecodeResponse(b)
	if err != nil || got.Accept {
		t.Errorf("decode = %+v, %v; want reject from bit 0", got, err)
	}
}

func TestDecodeResponseErrors(t *testing.T) {
	good := Response{Channel: 1}.Encode(NodeMAC(1))
	if _, err := DecodeResponse(good[:HeaderLen+2]); !errors.Is(err, ErrTruncated) {
		t.Errorf("short: %v, want ErrTruncated", err)
	}
	wrongSub := append([]byte(nil), good...)
	wrongSub[HeaderLen] = controlTypeConnect
	if _, err := DecodeResponse(wrongSub); !errors.Is(err, ErrControlType) {
		t.Errorf("wrong subtype: %v, want ErrControlType", err)
	}
	wrongType := append([]byte(nil), good...)
	wrongType[12] = 0x08
	wrongType[13] = 0x00
	if _, err := DecodeResponse(wrongType); !errors.Is(err, ErrEtherType) {
		t.Errorf("wrong EtherType: %v, want ErrEtherType", err)
	}
}
