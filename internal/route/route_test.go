package route

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
)

// ring4 is a 4-switch ring (0-1, 1-2, 2-3, 3-0) with one node per
// switch: node i+1 on switch i.
func ring4() *Graph {
	g := NewGraph()
	for s := SwitchID(0); s < 4; s++ {
		if err := g.AddSwitch(s); err != nil {
			panic(err)
		}
	}
	for _, tr := range [][2]SwitchID{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if err := g.ConnectSwitches(tr[0], tr[1]); err != nil {
			panic(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := g.AttachNode(core.NodeID(i+1), SwitchID(i)); err != nil {
			panic(err)
		}
	}
	return g
}

// pathString renders a route compactly for comparisons.
func pathString(edges []Edge) string {
	s := ""
	for _, e := range edges {
		s += e.String() + " "
	}
	return s
}

// TestGraphConstructionErrors table-drives the construction hardening:
// every malformed build step must fail with its typed error, and the
// graph must be left unchanged by the rejected call.
func TestGraphConstructionErrors(t *testing.T) {
	cases := []struct {
		name string
		op   func(g *Graph) error
		want error
	}{
		{"duplicate switch", func(g *Graph) error { return g.AddSwitch(0) }, ErrDuplicate},
		{"self-loop trunk", func(g *Graph) error { return g.ConnectSwitches(1, 1) }, ErrDuplicate},
		{"duplicate trunk", func(g *Graph) error { return g.ConnectSwitches(0, 1) }, ErrDuplicate},
		{"duplicate trunk reversed", func(g *Graph) error { return g.ConnectSwitches(1, 0) }, ErrDuplicate},
		{"trunk to unknown switch", func(g *Graph) error { return g.ConnectSwitches(0, 9) }, ErrUnknownSwitch},
		{"trunk from unknown switch", func(g *Graph) error { return g.ConnectSwitches(9, 0) }, ErrUnknownSwitch},
		{"re-attach node", func(g *Graph) error { return g.AttachNode(1, 1) }, ErrDuplicate},
		{"re-attach node same switch", func(g *Graph) error { return g.AttachNode(1, 0) }, ErrDuplicate},
		{"attach to unknown switch", func(g *Graph) error { return g.AttachNode(7, 9) }, ErrUnknownSwitch},
		{"fail unknown trunk", func(g *Graph) error { _, err := g.SetLinkUp(0, 2, false); return err }, ErrUnknownLink},
		{"fail unknown switch", func(g *Graph) error { _, err := g.SetSwitchUp(9, false); return err }, ErrUnknownSwitch},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := ring4()
			before := fmt.Sprintf("%v/%v/%d", g.adj, g.home, g.Version())
			err := tc.op(g)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got error %v, want %v", err, tc.want)
			}
			if after := fmt.Sprintf("%v/%v/%d", g.adj, g.home, g.Version()); after != before {
				t.Fatalf("rejected call mutated the graph:\nbefore %s\nafter  %s", before, after)
			}
		})
	}
}

// TestShortestDeterministic verifies BFS route choice is stable across
// repeated calls and picks the sorted-adjacency path among equal-length
// candidates (ring 0→2 has two 2-trunk paths; via switch 1 wins).
func TestShortestDeterministic(t *testing.T) {
	g := ring4()
	want := "n1→sw0 sw0→sw1 sw1→sw2 sw2→n3 "
	for i := 0; i < 10; i++ {
		edges, err := Shortest{}.Route(g, 1, 3)
		if err != nil {
			t.Fatalf("route: %v", err)
		}
		if got := pathString(edges); got != want {
			t.Fatalf("call %d: route %q, want %q", i, got, want)
		}
	}
}

// TestShortestAvoidsFailures walks a failure/repair cycle: downing the
// preferred trunk diverts the route, downing the alternate switch
// partitions the pair, and repairs restore each state exactly.
func TestShortestAvoidsFailures(t *testing.T) {
	g := ring4()
	route := func() (string, error) {
		edges, err := Shortest{}.Route(g, 1, 3)
		return pathString(edges), err
	}
	via1 := "n1→sw0 sw0→sw1 sw1→sw2 sw2→n3 "
	via3 := "n1→sw0 sw0→sw3 sw3→sw2 sw2→n3 "

	if got, _ := route(); got != via1 {
		t.Fatalf("healthy route %q, want %q", got, via1)
	}
	if changed, err := g.SetLinkUp(0, 1, false); err != nil || !changed {
		t.Fatalf("SetLinkUp(0,1,false) = %v, %v", changed, err)
	}
	if got, _ := route(); got != via3 {
		t.Fatalf("route after trunk 0-1 down %q, want %q", got, via3)
	}
	if changed, err := g.SetSwitchUp(3, false); err != nil || !changed {
		t.Fatalf("SetSwitchUp(3,false) = %v, %v", changed, err)
	}
	if _, err := route(); !errors.Is(err, ErrNoRoute) {
		t.Fatalf("route with both paths dead: err=%v, want ErrNoRoute", err)
	}
	if changed, err := g.SetSwitchUp(3, true); err != nil || !changed {
		t.Fatalf("repair switch 3: %v, %v", changed, err)
	}
	if got, _ := route(); got != via3 {
		t.Fatalf("route after switch repair %q, want %q", got, via3)
	}
	if changed, err := g.SetLinkUp(0, 1, true); err != nil || !changed {
		t.Fatalf("repair trunk 0-1: %v, %v", changed, err)
	}
	if got, _ := route(); got != via1 {
		t.Fatalf("fully repaired route %q, want %q", got, via1)
	}
}

// TestTreeAvoidsFailures verifies multicast trees respect link state:
// with trunk 0-1 down the tree to sinks on switches 1 and 2 must run the
// long way around the ring.
func TestTreeAvoidsFailures(t *testing.T) {
	g := ring4()
	if _, err := g.SetLinkUp(0, 1, false); err != nil {
		t.Fatal(err)
	}
	edges, parents, leaves, err := Shortest{}.Tree(g, 1, []core.NodeID{2, 3})
	if err != nil {
		t.Fatalf("tree: %v", err)
	}
	for _, e := range edges {
		if e.From == SwitchEnd(0) && e.To == SwitchEnd(1) {
			t.Fatalf("tree uses downed trunk 0-1: %v", edges)
		}
	}
	if len(leaves) != 2 || len(parents) != len(edges) {
		t.Fatalf("tree shape: %d edges, parents %v, leaves %v", len(edges), parents, leaves)
	}
	for i, p := range parents {
		if p >= i || (i == 0) != (p == -1) {
			t.Fatalf("parents not topologically ordered: %v", parents)
		}
	}
}

// TestVersionCountsOnlyRealFlips verifies no-op up/down calls do not
// advance the version counter (consumers use it to invalidate caches).
func TestVersionCountsOnlyRealFlips(t *testing.T) {
	g := ring4()
	v := g.Version()
	if changed, err := g.SetLinkUp(0, 1, true); err != nil || changed {
		t.Fatalf("no-op repair reported change: %v, %v", changed, err)
	}
	if g.Version() != v {
		t.Fatal("no-op repair bumped version")
	}
	if _, err := g.SetLinkUp(0, 1, false); err != nil {
		t.Fatal(err)
	}
	if g.Version() != v+1 {
		t.Fatalf("down flip: version %d, want %d", g.Version(), v+1)
	}
	if changed, _ := g.SetLinkUp(0, 1, false); changed {
		t.Fatal("repeated down reported change")
	}
	if g.Version() != v+1 {
		t.Fatal("repeated down bumped version")
	}
}

// TestAvailabilityQueries pins the LinkUp/SwitchUp contract, including
// the unknown-element convention (false, never a panic).
func TestAvailabilityQueries(t *testing.T) {
	g := ring4()
	if !g.LinkUp(0, 1) || !g.LinkUp(1, 0) {
		t.Fatal("healthy trunk reports down")
	}
	if g.LinkUp(0, 2) {
		t.Fatal("unknown trunk reports up")
	}
	if g.SwitchUp(9) {
		t.Fatal("unknown switch reports up")
	}
	if _, err := g.SetSwitchUp(2, false); err != nil {
		t.Fatal(err)
	}
	if g.SwitchUp(2) {
		t.Fatal("downed switch reports up")
	}
}

// TestLeastLoadedSteersAroundLoad builds the ring's diamond (0→2 via 1
// or via 3): with heavy load reported on the 0→1 trunk, LeastLoaded must
// take the via-3 path that plain Shortest rejects on ID order — and with
// a nil Load hook it must degrade to exactly the Shortest choice.
func TestLeastLoadedSteersAroundLoad(t *testing.T) {
	g := ring4()
	loaded := LeastLoaded{Load: func(e Edge) int64 {
		if e.From == SwitchEnd(0) && e.To == SwitchEnd(1) {
			return 100
		}
		return 0
	}}
	edges, err := loaded.Route(g, 1, 3)
	if err != nil {
		t.Fatalf("route: %v", err)
	}
	if got, want := pathString(edges), "n1→sw0 sw0→sw3 sw3→sw2 sw2→n3 "; got != want {
		t.Fatalf("loaded route %q, want %q", got, want)
	}

	sEdges, err := Shortest{}.Route(g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	nEdges, err := LeastLoaded{}.Route(g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if pathString(nEdges) != pathString(sEdges) {
		t.Fatalf("nil-Load LeastLoaded diverges from Shortest: %q vs %q",
			pathString(nEdges), pathString(sEdges))
	}
}

// TestLeastLoadedNeverLengthensPaths verifies load only breaks ties:
// even infinite load on every trunk of the unique shortest path must not
// push the router onto a longer detour.
func TestLeastLoadedSticksToShortest(t *testing.T) {
	// Line 0-1-2 plus a long detour 0-3-4-2.
	g := NewGraph()
	for s := SwitchID(0); s < 5; s++ {
		if err := g.AddSwitch(s); err != nil {
			t.Fatal(err)
		}
	}
	for _, tr := range [][2]SwitchID{{0, 1}, {1, 2}, {0, 3}, {3, 4}, {4, 2}} {
		if err := g.ConnectSwitches(tr[0], tr[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.AttachNode(1, 0); err != nil {
		t.Fatal(err)
	}
	if err := g.AttachNode(2, 2); err != nil {
		t.Fatal(err)
	}
	r := LeastLoaded{Load: func(Edge) int64 { return 1 << 40 }}
	edges, err := r.Route(g, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := pathString(edges), "n1→sw0 sw0→sw1 sw1→sw2 sw2→n2 "; got != want {
		t.Fatalf("uniform load changed the path: %q, want %q", got, want)
	}
}
