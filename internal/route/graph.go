package route

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Graph is the physical layout — switches, inter-switch trunks and node
// attachments — plus the live availability of every element. Construction
// and mutation are not safe for concurrent use; the owning controller
// serializes access.
//
// Failures are modeled as state, not structure: a downed trunk or switch
// stays in the graph (so repair is a pure flag flip) but is skipped by
// every Router traversal. With nothing down, traversal order is
// bit-identical to the historical immutable topology.
type Graph struct {
	switches map[SwitchID]struct{}
	adj      map[SwitchID][]SwitchID    // sorted adjacency, both directions
	home     map[core.NodeID]SwitchID   // node → attachment switch
	nodesAt  map[SwitchID][]core.NodeID // reverse, sorted

	downTrunks   map[[2]SwitchID]struct{} // canonical low-high keys
	downSwitches map[SwitchID]struct{}
	version      uint64
}

// NewGraph returns an empty fabric with every element up.
func NewGraph() *Graph {
	return &Graph{
		switches:     make(map[SwitchID]struct{}),
		adj:          make(map[SwitchID][]SwitchID),
		home:         make(map[core.NodeID]SwitchID),
		nodesAt:      make(map[SwitchID][]core.NodeID),
		downTrunks:   make(map[[2]SwitchID]struct{}),
		downSwitches: make(map[SwitchID]struct{}),
	}
}

// trunkKey canonicalizes an undirected trunk to a (low, high) pair.
func trunkKey(a, b SwitchID) [2]SwitchID {
	if a > b {
		a, b = b, a
	}
	return [2]SwitchID{a, b}
}

// AddSwitch registers a switch. Registering the same ID twice is an
// ErrDuplicate, not a silent no-op.
func (g *Graph) AddSwitch(id SwitchID) error {
	if _, dup := g.switches[id]; dup {
		return fmt.Errorf("%w: switch %d", ErrDuplicate, id)
	}
	g.switches[id] = struct{}{}
	return nil
}

// ConnectSwitches adds a full-duplex trunk between two switches. Self
// loops and duplicate trunks are rejected with ErrDuplicate.
func (g *Graph) ConnectSwitches(a, b SwitchID) error {
	if _, ok := g.switches[a]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSwitch, a)
	}
	if _, ok := g.switches[b]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSwitch, b)
	}
	if a == b {
		return fmt.Errorf("%w: self-link on switch %d", ErrDuplicate, a)
	}
	for _, n := range g.adj[a] {
		if n == b {
			return fmt.Errorf("%w: trunk %d-%d", ErrDuplicate, a, b)
		}
	}
	g.adj[a] = insertSorted(g.adj[a], b)
	g.adj[b] = insertSorted(g.adj[b], a)
	return nil
}

func insertSorted(s []SwitchID, v SwitchID) []SwitchID {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// AttachNode homes an end-node on a switch. Re-attaching an
// already-homed node is an ErrDuplicate, not a silent overwrite.
func (g *Graph) AttachNode(n core.NodeID, s SwitchID) error {
	if _, ok := g.switches[s]; !ok {
		return fmt.Errorf("%w: %d", ErrUnknownSwitch, s)
	}
	if _, dup := g.home[n]; dup {
		return fmt.Errorf("%w: node %d", ErrDuplicate, n)
	}
	g.home[n] = s
	g.nodesAt[s] = append(g.nodesAt[s], n)
	sort.Slice(g.nodesAt[s], func(i, j int) bool { return g.nodesAt[s][i] < g.nodesAt[s][j] })
	return nil
}

// Home returns the switch a node attaches to.
func (g *Graph) Home(n core.NodeID) (SwitchID, bool) {
	s, ok := g.home[n]
	return s, ok
}

// NodesAt returns the nodes homed on a switch, ascending. The slice is
// shared; callers must not mutate it.
func (g *Graph) NodesAt(s SwitchID) []core.NodeID { return g.nodesAt[s] }

// Neighbors returns the switches trunked to s, ascending, regardless of
// up/down state. The slice is shared; callers must not mutate it.
func (g *Graph) Neighbors(s SwitchID) []SwitchID { return g.adj[s] }

// HasSwitch reports whether a switch is registered.
func (g *Graph) HasSwitch(s SwitchID) bool {
	_, ok := g.switches[s]
	return ok
}

// SetLinkUp marks the trunk between a and b as up or down. The trunk
// must exist; a downed trunk stays in the graph (repair is SetLinkUp
// true) but is skipped by routing. It reports whether the state changed.
func (g *Graph) SetLinkUp(a, b SwitchID, up bool) (bool, error) {
	found := false
	for _, n := range g.adj[a] {
		if n == b {
			found = true
			break
		}
	}
	if !found {
		return false, fmt.Errorf("%w: trunk %d-%d", ErrUnknownLink, a, b)
	}
	key := trunkKey(a, b)
	_, down := g.downTrunks[key]
	if down != up {
		return false, nil // already in the requested state
	}
	if up {
		delete(g.downTrunks, key)
	} else {
		g.downTrunks[key] = struct{}{}
	}
	g.version++
	return true, nil
}

// SetSwitchUp marks a switch as up or down. A downed switch is skipped
// by routing along with every trunk touching it; nodes homed on it
// become unreachable. It reports whether the state changed.
func (g *Graph) SetSwitchUp(s SwitchID, up bool) (bool, error) {
	if _, ok := g.switches[s]; !ok {
		return false, fmt.Errorf("%w: %d", ErrUnknownSwitch, s)
	}
	_, down := g.downSwitches[s]
	if down != up {
		return false, nil
	}
	if up {
		delete(g.downSwitches, s)
	} else {
		g.downSwitches[s] = struct{}{}
	}
	g.version++
	return true, nil
}

// LinkUp reports whether the trunk between a and b is up. Unknown trunks
// report false.
func (g *Graph) LinkUp(a, b SwitchID) bool {
	found := false
	for _, n := range g.adj[a] {
		if n == b {
			found = true
			break
		}
	}
	if !found {
		return false
	}
	_, down := g.downTrunks[trunkKey(a, b)]
	return !down
}

// SwitchUp reports whether a switch is up. Unknown switches report false.
func (g *Graph) SwitchUp(s SwitchID) bool {
	if _, ok := g.switches[s]; !ok {
		return false
	}
	_, down := g.downSwitches[s]
	return !down
}

// Version counts graph mutations that can invalidate routes (up/down
// flips). Consumers caching routes compare versions to detect staleness.
func (g *Graph) Version() uint64 { return g.version }

// usable reports whether the directed hop cur→next may carry traffic:
// both switches and the trunk between them are up.
func (g *Graph) usable(cur, next SwitchID) bool {
	return g.SwitchUp(next) && g.LinkUp(cur, next)
}
