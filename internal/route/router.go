package route

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Router is the pluggable path-selection policy. Route picks the
// directed links of a unicast path, Tree a multicast distribution tree
// (see Shortest.Tree for the exact return contract). Implementations
// must be deterministic: the same graph state yields the same answer.
//
// Routers only read the graph; failures enter routing purely through the
// graph's up/down state, which every implementation must respect.
type Router interface {
	// Route returns the directed links of a path from src to dst:
	// src→home(src), a trunk sequence, home(dst)→dst.
	Route(g *Graph, src, dst core.NodeID) ([]Edge, error)
	// Tree returns a distribution tree from src to every sink: the
	// tree's directed edges (edge 0 is the source uplink), the parent
	// index of each edge (-1 for the root; always parents[i] < i), and
	// for each sink the index of its delivering leaf edge.
	Tree(g *Graph, src core.NodeID, sinks []core.NodeID) (route []Edge, parents []int, leaves []int, err error)
}

// Shortest routes along deterministic shortest paths: BFS over the trunk
// graph with sorted adjacency, so the choice among equal-length paths is
// stable. On a fully-up graph it reproduces the historical fixed-route
// behavior bit-for-bit; downed trunks and switches are skipped.
type Shortest struct{}

// Route implements Router.
func (Shortest) Route(g *Graph, src, dst core.NodeID) ([]Edge, error) {
	sSrc, sDst, err := endpoints(g, src, dst)
	if err != nil {
		return nil, err
	}
	swPath, err := shortestSwitchPath(g, sSrc, sDst)
	if err != nil {
		return nil, err
	}
	return assemble(src, dst, swPath), nil
}

// Tree implements Router: one BFS from home(src) fixes a deterministic
// shortest path to every reachable switch, each sink's path is read off
// the same predecessor map, and shared prefixes therefore dedupe into
// single tree edges.
func (Shortest) Tree(g *Graph, src core.NodeID, sinks []core.NodeID) (route []Edge, parents []int, leaves []int, err error) {
	sSrc, ok := g.home[src]
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %d", ErrUnknownNode, src)
	}
	prev := map[SwitchID]SwitchID{}
	if g.SwitchUp(sSrc) {
		// Full BFS from the source switch; prev[s] is s's predecessor on
		// the unique (deterministic, sorted-adjacency) shortest path.
		prev[sSrc] = sSrc
		queue := []SwitchID{sSrc}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, next := range g.adj[cur] {
				if _, seen := prev[next]; seen {
					continue
				}
				if !g.usable(cur, next) {
					continue
				}
				prev[next] = cur
				queue = append(queue, next)
			}
		}
	}
	return graft(g, src, sinks, sSrc, prev)
}

// endpoints validates a unicast pair and resolves both home switches.
func endpoints(g *Graph, src, dst core.NodeID) (sSrc, sDst SwitchID, err error) {
	if src == dst {
		return 0, 0, fmt.Errorf("route: route from node %d to itself", src)
	}
	sSrc, ok := g.home[src]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownNode, src)
	}
	sDst, ok = g.home[dst]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %d", ErrUnknownNode, dst)
	}
	return sSrc, sDst, nil
}

// assemble turns a switch path into the full directed-edge route.
func assemble(src, dst core.NodeID, swPath []SwitchID) []Edge {
	edges := make([]Edge, 0, len(swPath)+1)
	edges = append(edges, Edge{From: NodeEnd(src), To: SwitchEnd(swPath[0])})
	for i := 1; i < len(swPath); i++ {
		edges = append(edges, Edge{From: SwitchEnd(swPath[i-1]), To: SwitchEnd(swPath[i])})
	}
	edges = append(edges, Edge{From: SwitchEnd(swPath[len(swPath)-1]), To: NodeEnd(dst)})
	return edges
}

// graft builds the tree-edge structure shared by every Router: walk each
// sink's path back to the source switch on the predecessor map, then
// graft the not-yet-spanned suffix onto the tree front to back.
func graft(g *Graph, src core.NodeID, sinks []core.NodeID, sSrc SwitchID, prev map[SwitchID]SwitchID) (route []Edge, parents []int, leaves []int, err error) {
	route = append(route, Edge{From: NodeEnd(src), To: SwitchEnd(sSrc)})
	parents = append(parents, -1)
	// treeAt maps a switch already spanned by the tree to the index of
	// the edge that delivers into it.
	treeAt := map[SwitchID]int{sSrc: 0}
	for _, sink := range sinks {
		if sink == src {
			return nil, nil, nil, fmt.Errorf("route: multicast from node %d to itself", src)
		}
		sDst, ok := g.home[sink]
		if !ok {
			return nil, nil, nil, fmt.Errorf("%w: %d", ErrUnknownNode, sink)
		}
		if _, reached := prev[sDst]; !reached {
			return nil, nil, nil, fmt.Errorf("%w: sw%d to sw%d", ErrNoRoute, sSrc, sDst)
		}
		var path []SwitchID
		for at := sDst; at != sSrc; at = prev[at] {
			path = append(path, at)
		}
		for i := len(path) - 1; i >= 0; i-- {
			s := path[i]
			if _, spanned := treeAt[s]; spanned {
				continue
			}
			route = append(route, Edge{From: SwitchEnd(prev[s]), To: SwitchEnd(s)})
			parents = append(parents, treeAt[prev[s]])
			treeAt[s] = len(route) - 1
		}
		route = append(route, Edge{From: SwitchEnd(sDst), To: NodeEnd(sink)})
		parents = append(parents, treeAt[sDst])
		leaves = append(leaves, len(route)-1)
	}
	return route, parents, leaves, nil
}

// shortestSwitchPath runs BFS over the live trunk graph.
func shortestSwitchPath(g *Graph, from, to SwitchID) ([]SwitchID, error) {
	if !g.SwitchUp(from) || !g.SwitchUp(to) {
		return nil, fmt.Errorf("%w: sw%d to sw%d", ErrNoRoute, from, to)
	}
	if from == to {
		return []SwitchID{from}, nil
	}
	prev := map[SwitchID]SwitchID{from: from}
	queue := []SwitchID{from}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.adj[cur] {
			if _, seen := prev[next]; seen {
				continue
			}
			if !g.usable(cur, next) {
				continue
			}
			prev[next] = cur
			if next == to {
				var path []SwitchID
				for at := to; ; at = prev[at] {
					path = append(path, at)
					if at == from {
						break
					}
				}
				// Reverse in place.
				for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
					path[i], path[j] = path[j], path[i]
				}
				return path, nil
			}
			queue = append(queue, next)
		}
	}
	return nil, fmt.Errorf("%w: sw%d to sw%d", ErrNoRoute, from, to)
}

// LeastLoaded routes by lexicographic (hops, load) cost: among the
// shortest paths it prefers the one whose trunks carry the least load as
// reported by the Load hook, steering new channels around saturated
// trunks. Ties beyond load break on sorted adjacency, so the choice
// stays deterministic. A nil Load degenerates to hop count only.
type LeastLoaded struct {
	// Load reports the cost currently carried by a directed trunk edge —
	// typically the number of admitted channel tasks on it. It is
	// consulted once per candidate edge per routing call.
	Load func(Edge) int64
}

// Route implements Router.
func (r LeastLoaded) Route(g *Graph, src, dst core.NodeID) ([]Edge, error) {
	sSrc, sDst, err := endpoints(g, src, dst)
	if err != nil {
		return nil, err
	}
	prev, reach := r.spt(g, sSrc)
	if !reach[sDst] {
		return nil, fmt.Errorf("%w: sw%d to sw%d", ErrNoRoute, sSrc, sDst)
	}
	var rev []SwitchID
	for at := sDst; ; at = prev[at] {
		rev = append(rev, at)
		if at == sSrc {
			break
		}
	}
	path := make([]SwitchID, len(rev))
	for i, s := range rev {
		path[len(rev)-1-i] = s
	}
	return assemble(src, dst, path), nil
}

// Tree implements Router: the least-loaded shortest-path tree from the
// source switch (a tree by construction, since every switch has one
// predecessor), grafted per sink exactly like Shortest.Tree.
func (r LeastLoaded) Tree(g *Graph, src core.NodeID, sinks []core.NodeID) ([]Edge, []int, []int, error) {
	sSrc, ok := g.home[src]
	if !ok {
		return nil, nil, nil, fmt.Errorf("%w: %d", ErrUnknownNode, src)
	}
	prev, _ := r.spt(g, sSrc)
	return graft(g, src, sinks, sSrc, prev)
}

// spt computes the single-source lexicographic (hops, load) shortest-path
// tree from one switch. Selection order and relaxation are both
// deterministic: candidates are scanned in ascending switch-ID order and
// an equal-cost candidate never displaces the incumbent predecessor.
func (r LeastLoaded) spt(g *Graph, from SwitchID) (prev map[SwitchID]SwitchID, reach map[SwitchID]bool) {
	prev = make(map[SwitchID]SwitchID)
	reach = make(map[SwitchID]bool)
	if !g.SwitchUp(from) {
		return prev, reach
	}
	ids := make([]SwitchID, 0, len(g.switches))
	for s := range g.switches {
		ids = append(ids, s)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	hops := map[SwitchID]int64{from: 0}
	load := map[SwitchID]int64{from: 0}
	prev[from] = from
	done := make(map[SwitchID]bool)
	for {
		// Pick the cheapest unfinished reachable switch, lowest ID first.
		cur, found := SwitchID(0), false
		for _, s := range ids {
			if done[s] {
				continue
			}
			if _, ok := hops[s]; !ok {
				continue
			}
			if !found || hops[s] < hops[cur] || (hops[s] == hops[cur] && load[s] < load[cur]) {
				cur, found = s, true
			}
		}
		if !found {
			break
		}
		done[cur] = true
		reach[cur] = true
		for _, next := range g.adj[cur] {
			if done[next] || !g.usable(cur, next) {
				continue
			}
			h := hops[cur] + 1
			l := load[cur] + r.edgeLoad(cur, next)
			oh, seen := hops[next]
			if seen && (oh < h || (oh == h && load[next] <= l)) {
				continue
			}
			hops[next], load[next], prev[next] = h, l, cur
		}
	}
	return prev, reach
}

// edgeLoad consults the Load hook for one directed trunk.
func (r LeastLoaded) edgeLoad(a, b SwitchID) int64 {
	if r.Load == nil {
		return 0
	}
	return r.Load(Edge{From: SwitchEnd(a), To: SwitchEnd(b)})
}
