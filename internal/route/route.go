// Package route owns all path and tree computation over the switch
// fabric. It was extracted from internal/topo so that routing policy is
// pluggable and the physical layout is mutable at runtime:
//
//   - Graph is the fabric itself — switches, trunks and node
//     attachments — plus the live up/down state of every element.
//     SetLinkUp and SetSwitchUp flip availability and bump a version
//     counter so consumers know cached routes may be stale.
//   - Router is the policy seam: Route picks a unicast path, Tree a
//     multicast distribution tree. Shortest reproduces the historical
//     deterministic BFS bit-for-bit on a fully-up graph; LeastLoaded
//     trades path length against a caller-supplied per-edge cost.
//
// internal/topo consumes this package for admission-control routing and
// re-exports the shared vocabulary types (SwitchID, Endpoint, Edge) as
// aliases, so existing call sites keep compiling unchanged.
package route

import (
	"errors"
	"fmt"

	"repro/internal/core"
)

// SwitchID identifies a switch in the fabric.
type SwitchID uint16

// Endpoint is one end of a directed link: either an end-node or a switch.
type Endpoint struct {
	Switch bool
	ID     uint16
}

// NodeEnd returns the endpoint of an end-node.
func NodeEnd(n core.NodeID) Endpoint { return Endpoint{ID: uint16(n)} }

// SwitchEnd returns the endpoint of a switch.
func SwitchEnd(s SwitchID) Endpoint { return Endpoint{Switch: true, ID: uint16(s)} }

// String implements fmt.Stringer.
func (e Endpoint) String() string {
	if e.Switch {
		return fmt.Sprintf("sw%d", e.ID)
	}
	return fmt.Sprintf("n%d", e.ID)
}

// Edge is one directed link (one pseudo-processor, as in §18.3.2 — each
// full-duplex physical link contributes two Edges).
type Edge struct {
	From, To Endpoint
}

// String implements fmt.Stringer.
func (e Edge) String() string { return e.From.String() + "→" + e.To.String() }

// Graph construction and mutation errors.
var (
	// ErrUnknownSwitch marks an operation naming a switch that was never added.
	ErrUnknownSwitch = errors.New("route: unknown switch")
	// ErrUnknownNode marks a routing request for a node that was never attached.
	ErrUnknownNode = errors.New("route: unknown node")
	// ErrDuplicate marks re-registration of an existing element: a switch
	// ID already added, a self-loop or duplicate trunk, or re-attachment
	// of an already-homed node.
	ErrDuplicate = errors.New("route: duplicate element")
	// ErrNoRoute marks a (src, dst) pair with no connecting path on the
	// live graph — either never connected or partitioned by failures.
	ErrNoRoute = errors.New("route: no route between nodes")
	// ErrUnknownLink marks SetLinkUp on a trunk that does not exist.
	ErrUnknownLink = errors.New("route: unknown link")
)
