// Package benchfmt is the shared benchmark-artifact machinery behind
// `rtexp -parsebench` and `rtload`: it parses `go test -bench` text
// output into a machine-readable report, reads back previously emitted
// JSON artifacts, merges several reports into one document (the CI
// bench job combines admission-scale and rtload results this way) and
// writes the canonical indented-JSON form (BENCH_*.json).
package benchfmt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark line: the name (procs suffix stripped), the
// iteration count, and every reported metric keyed by its unit (ns/op,
// B/op, allocs/op, custom b.ReportMetric units).
type Result struct {
	Name  string `json:"name"`
	Procs int    `json:"procs,omitempty"`
	Runs  int64  `json:"runs"`
	// Source names the input file the line came from (annotated by
	// ParseFile, preserved by the JSON round trip). It disambiguates
	// same-named benchmarks from different artifacts in a merged
	// document and is the Sort tie-breaker.
	Source  string             `json:"source,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the artifact: the run's environment header plus every
// benchmark line, in input order.
type Report struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

// Parse reads `go test -bench` text output. Unrecognized lines (test
// logs, PASS/ok trailers) are skipped — the parser is meant to run on a
// `| tee` of the raw CI log.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, runs, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Runs: runs, Metrics: make(map[string]float64)}
		res.Name = fields[0]
		if i := strings.LastIndex(res.Name, "-"); i > 0 {
			if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Name = res.Name[:i]
				res.Procs = procs
			}
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if !ok || len(res.Metrics) == 0 {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return rep, nil
}

// ParseAny reads either `go test -bench` text or a previously emitted
// JSON artifact, sniffing the format from the first non-space byte — so
// one CI step can merge raw bench logs with BENCH_*.json files other
// tools (rtload) emitted directly.
func ParseAny(r io.Reader) (*Report, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	if trimmed := bytes.TrimSpace(buf); len(trimmed) > 0 && trimmed[0] == '{' {
		rep := &Report{}
		if err := json.Unmarshal(trimmed, rep); err != nil {
			return nil, fmt.Errorf("parsing JSON report: %w", err)
		}
		if len(rep.Benchmarks) == 0 {
			return nil, fmt.Errorf("no benchmark entries found")
		}
		return rep, nil
	}
	return Parse(bytes.NewReader(buf))
}

// ParseFile is ParseAny over a file; "-" reads stdin. Every result that
// does not already carry a source annotation (a re-read merged
// document keeps its original one) is stamped with the file's path, so
// a later Sort can order same-named benchmarks from different inputs
// deterministically.
func ParseFile(path string) (*Report, error) {
	var (
		rep *Report
		err error
	)
	if path == "-" {
		rep, err = ParseAny(os.Stdin)
	} else {
		var f *os.File
		if f, err = os.Open(path); err != nil {
			return nil, err
		}
		rep, err = ParseAny(f)
		f.Close()
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Source == "" {
			rep.Benchmarks[i].Source = path
		}
	}
	return rep, nil
}

// Merge combines reports into one document: benchmarks concatenate in
// input order; each environment header field takes the first non-empty
// value and is blanked when later reports disagree (a merged document
// spanning two packages has no single pkg).
func Merge(reports ...*Report) *Report {
	out := &Report{}
	conflict := make(map[*string]bool)
	fold := func(dst *string, v string) {
		switch {
		case v == "" || conflict[dst]:
		case *dst == "":
			*dst = v
		case *dst != v:
			*dst = ""
			conflict[dst] = true
		}
	}
	for _, rep := range reports {
		if rep == nil {
			continue
		}
		fold(&out.Goos, rep.Goos)
		fold(&out.Goarch, rep.Goarch)
		fold(&out.Pkg, rep.Pkg)
		fold(&out.CPU, rep.CPU)
		out.Benchmarks = append(out.Benchmarks, rep.Benchmarks...)
	}
	return out
}

// Sort orders the benchmarks by name, then by source file, with a
// stable sort (same-key entries keep their input order). Merged
// documents become a pure function of the input *set* rather than the
// argument order, so repeated CI runs emit byte-identical JSON.
func (r *Report) Sort() {
	sort.SliceStable(r.Benchmarks, func(i, j int) bool {
		a, b := r.Benchmarks[i], r.Benchmarks[j]
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Source < b.Source
	})
}

// WriteJSON emits the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Delta is one benchmark's ns/op movement between a baseline document
// and a current one, matched by name. Pct is the relative change in
// percent — positive means the current run is slower.
type Delta struct {
	Name     string
	Baseline float64 // baseline ns/op
	Current  float64 // current ns/op
	Pct      float64 // (Current-Baseline)/Baseline * 100
}

// FormatDeltas renders deltas as aligned gate lines — one per matched
// benchmark, verdict "ok" or "REGRESSED" — and returns how many
// regressed, i.e. slowed down strictly beyond threshold percent (a
// delta exactly at the threshold passes; speedups always pass). prefix
// leads every line ("rtexp: delta" gives the classic CI gate output).
// Both rtexp gate paths (-parsebench -baseline and -sweep -baseline)
// share this renderer, so their stderr contract is identical.
func FormatDeltas(w io.Writer, deltas []Delta, threshold float64, prefix string) (regressed int) {
	for _, d := range deltas {
		verdict := "ok"
		if d.Pct > threshold {
			verdict = "REGRESSED"
			regressed++
		}
		fmt.Fprintf(w, "%s %-60s %14.1f -> %14.1f ns/op  %+7.1f%%  %s\n",
			prefix, d.Name, d.Baseline, d.Current, d.Pct, verdict)
	}
	return regressed
}

// Deltas compares current against baseline on the ns/op metric,
// matching benchmarks by name (a merged document's Source annotations
// are ignored — the name is the identity). Benchmarks present on only
// one side, or without a positive ns/op on both, are skipped: a delta
// against nothing is noise, not a regression. Results come back in
// current's benchmark order, deduplicated on first occurrence.
func Deltas(baseline, current *Report) []Delta {
	base := make(map[string]float64, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		if v := b.Metrics["ns/op"]; v > 0 {
			if _, dup := base[b.Name]; !dup {
				base[b.Name] = v
			}
		}
	}
	var out []Delta
	seen := make(map[string]bool)
	for _, b := range current.Benchmarks {
		cur := b.Metrics["ns/op"]
		old, ok := base[b.Name]
		if !ok || cur <= 0 || seen[b.Name] {
			continue
		}
		seen[b.Name] = true
		out = append(out, Delta{
			Name:     b.Name,
			Baseline: old,
			Current:  cur,
			Pct:      (cur - old) / old * 100,
		})
	}
	return out
}
