package benchfmt

import (
	"strings"
	"testing"
)

const benchText = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAdmissionScale/10k/star-batch-ADPS-4         	       1	  41000000 ns/op
BenchmarkFig18_5-4 	       2	   7700000 ns/op	        110 accepted-ADPS@200
PASS
ok  	repro	2.313s
`

func TestParseText(t *testing.T) {
	rep, err := Parse(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.CPU == "" || rep.Pkg != "repro" {
		t.Errorf("header: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkAdmissionScale/10k/star-batch-ADPS" || b.Procs != 4 || b.Metrics["ns/op"] != 41000000 {
		t.Errorf("benchmark 0: %+v", b)
	}
	if rep.Benchmarks[1].Metrics["accepted-ADPS@200"] != 110 {
		t.Errorf("custom metric lost: %+v", rep.Benchmarks[1].Metrics)
	}
}

func TestParseAnySniffsJSON(t *testing.T) {
	rep, err := Parse(strings.NewReader(benchText))
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAny(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("JSON artifact did not parse back: %v", err)
	}
	if len(back.Benchmarks) != len(rep.Benchmarks) || back.Goos != rep.Goos {
		t.Errorf("round trip changed the report: %+v", back)
	}
	// And text still parses through ParseAny.
	txt, err := ParseAny(strings.NewReader(benchText))
	if err != nil || len(txt.Benchmarks) != 2 {
		t.Errorf("text through ParseAny: %v, %+v", err, txt)
	}
}

func TestParseAnyRejectsEmpty(t *testing.T) {
	if _, err := ParseAny(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("empty bench text parsed")
	}
	if _, err := ParseAny(strings.NewReader(`{"benchmarks":[]}`)); err == nil {
		t.Error("empty JSON report parsed")
	}
}

func TestSortStable(t *testing.T) {
	r := &Report{Benchmarks: []Result{
		{Name: "B", Source: "y.txt", Runs: 1},
		{Name: "A", Source: "y.txt", Runs: 2},
		{Name: "A", Source: "x.txt", Runs: 3},
		{Name: "A", Source: "x.txt", Runs: 4}, // same key as previous: order must hold
	}}
	r.Sort()
	want := []int64{3, 4, 2, 1}
	for i, runs := range want {
		if r.Benchmarks[i].Runs != runs {
			t.Fatalf("after Sort, entry %d = %+v, want runs %d", i, r.Benchmarks[i], runs)
		}
	}
}

func TestSourceSurvivesJSONRoundTrip(t *testing.T) {
	r := &Report{Benchmarks: []Result{{Name: "A", Source: "bench.txt", Runs: 1, Metrics: map[string]float64{"ns/op": 1}}}}
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseAny(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Benchmarks[0].Source != "bench.txt" {
		t.Errorf("source lost in round trip: %+v", back.Benchmarks[0])
	}
}

func TestMerge(t *testing.T) {
	a := &Report{Goos: "linux", Pkg: "repro", CPU: "X", Benchmarks: []Result{{Name: "A", Runs: 1, Metrics: map[string]float64{"ns/op": 1}}}}
	b := &Report{Goos: "linux", Pkg: "repro/cmd/rtload", Benchmarks: []Result{{Name: "B", Runs: 2, Metrics: map[string]float64{"ops/s": 5}}}}
	m := Merge(a, b)
	if len(m.Benchmarks) != 2 || m.Benchmarks[0].Name != "A" || m.Benchmarks[1].Name != "B" {
		t.Fatalf("merged benchmarks: %+v", m.Benchmarks)
	}
	if m.Goos != "linux" {
		t.Errorf("agreeing header lost: %q", m.Goos)
	}
	if m.Pkg != "" {
		t.Errorf("conflicting pkg should blank, got %q", m.Pkg)
	}
	if m.CPU != "X" {
		t.Errorf("first non-empty cpu should win, got %q", m.CPU)
	}
}

func TestDeltas(t *testing.T) {
	base := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 200}},
		{Name: "BenchmarkGone", Metrics: map[string]float64{"ns/op": 50}},
		{Name: "BenchmarkNoNs", Metrics: map[string]float64{"ops/s": 9}},
	}}
	cur := &Report{Benchmarks: []Result{
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 130}},
		{Name: "BenchmarkB", Metrics: map[string]float64{"ns/op": 150}},
		{Name: "BenchmarkNew", Metrics: map[string]float64{"ns/op": 10}},
		{Name: "BenchmarkNoNs", Metrics: map[string]float64{"ops/s": 9}},
		{Name: "BenchmarkA", Metrics: map[string]float64{"ns/op": 999}}, // dup: first wins
	}}
	ds := Deltas(base, cur)
	if len(ds) != 2 {
		t.Fatalf("got %d deltas, want 2: %+v", len(ds), ds)
	}
	if ds[0].Name != "BenchmarkA" || ds[0].Pct != 30 {
		t.Errorf("delta A = %+v, want +30%%", ds[0])
	}
	if ds[1].Name != "BenchmarkB" || ds[1].Pct != -25 {
		t.Errorf("delta B = %+v, want -25%%", ds[1])
	}
}
