package fabricsim

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/topo"
)

// loadLine builds a k-switch line fabric with masters on the first and
// slaves on the last switch, admits up to maxReq channels under the given
// scheme, and returns the controller.
func loadLine(t *testing.T, k int, dps topo.HDPS, maxReq int, spec core.ChannelSpec) *topo.Controller {
	t.Helper()
	tp := topo.Line(k)
	for m := 0; m < 6; m++ {
		if err := tp.AttachNode(core.NodeID(m), 0); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < 12; s++ {
		if err := tp.AttachNode(core.NodeID(100+s), topo.SwitchID(k-1)); err != nil {
			t.Fatal(err)
		}
	}
	ctrl := topo.NewController(tp, topo.Config{DPS: dps})
	for q := 0; q < maxReq; q++ {
		req := spec
		req.Src = core.NodeID(q % 6)
		req.Dst = core.NodeID(100 + q%12)
		_, _ = ctrl.Request(req)
	}
	return ctrl
}

func TestSingleChannelAcrossLine(t *testing.T) {
	ctrl := loadLine(t, 3, topo.HSDPS{}, 1, core.ChannelSpec{C: 2, P: 50, D: 40})
	if ctrl.State().Len() != 1 {
		t.Fatal("channel not admitted")
	}
	s, err := New(ctrl.State(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(1000)
	delivered, misses, worst := s.Totals()
	if delivered < 38 { // ~20 periods x C=2
		t.Errorf("delivered %d, want ≈40", delivered)
	}
	if misses != 0 {
		t.Errorf("misses = %d", misses)
	}
	if worst > 40 {
		t.Errorf("worst delay %d > deadline 40", worst)
	}
	// 4 store-and-forward hops: physical floor is 4 slots; shaping pushes
	// toward the budget but can never beat the floor.
	ch := ctrl.State().Channels()[0]
	m := s.Channel(ch.ID)
	if m.Delays.Min() < 4 {
		t.Errorf("min delay %d below 4-hop floor", m.Delays.Min())
	}
}

// TestGuaranteeHoldsOnFabrics is the multi-hop analogue of netsim's
// headline property: every admitted channel meets its end-to-end
// deadline at full saturation, for both schemes, on fabrics of
// increasing depth, with synchronous and randomized offsets.
func TestGuaranteeHoldsOnFabrics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, k := range []int{1, 2, 3, 4} {
		for _, dps := range []topo.HDPS{topo.HSDPS{}, topo.HADPS{}} {
			for _, randomOffsets := range []bool{false, true} {
				ctrl := loadLine(t, k, dps, 150, core.ChannelSpec{C: 3, P: 300, D: 60})
				if ctrl.State().Len() == 0 {
					t.Fatalf("k=%d %s: nothing admitted", k, dps.Name())
				}
				offsets := map[core.ChannelID]int64{}
				if randomOffsets {
					for _, ch := range ctrl.State().Channels() {
						offsets[ch.ID] = rng.Int63n(300)
					}
				}
				s, err := New(ctrl.State(), offsets, Config{})
				if err != nil {
					t.Fatal(err)
				}
				s.Run(4 * 300)
				delivered, misses, worst := s.Totals()
				if delivered == 0 {
					t.Fatalf("k=%d %s: no traffic", k, dps.Name())
				}
				if misses != 0 {
					t.Fatalf("k=%d %s offsets=%v: %d misses (worst=%d, admitted=%d)",
						k, dps.Name(), randomOffsets, misses, worst, ctrl.State().Len())
				}
				if worst > 60 {
					t.Fatalf("k=%d %s: worst delay %d > 60", k, dps.Name(), worst)
				}
			}
		}
	}
}

func TestUnshapedFabricStillMeetsDeadlines(t *testing.T) {
	// Work-conserving multi-hop EDF on an admitted set: earlier
	// deliveries, same zero-miss outcome on this workload.
	ctrl := loadLine(t, 3, topo.HADPS{}, 150, core.ChannelSpec{C: 3, P: 300, D: 60})
	shaped, err := New(ctrl.State(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	unshaped, err := New(ctrl.State(), nil, Config{DisableShaping: true})
	if err != nil {
		t.Fatal(err)
	}
	shaped.Run(1200)
	unshaped.Run(1200)
	_, mS, wS := shaped.Totals()
	_, mU, wU := unshaped.Totals()
	if mS != 0 || mU != 0 {
		t.Fatalf("misses: shaped=%d unshaped=%d", mS, mU)
	}
	if wU > wS {
		t.Errorf("unshaped worst %d > shaped worst %d: work conservation should not hurt the max here", wU, wS)
	}
}

func TestNewRejectsChannelsWithoutBudgets(t *testing.T) {
	st := topo.NewState()
	_ = st
	// Build a state by hand through the controller, then corrupt is not
	// possible from outside; instead verify New on an empty state works
	// and a zero-route channel cannot occur via the public path.
	s, err := New(topo.NewState(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if d, m, w := s.Totals(); d != 0 || m != 0 || w != 0 {
		t.Error("empty simulation produced traffic")
	}
}

func TestRepeatedRunExtendsHorizon(t *testing.T) {
	ctrl := loadLine(t, 2, topo.HSDPS{}, 3, core.ChannelSpec{C: 1, P: 50, D: 30})
	s, err := New(ctrl.State(), nil, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.Run(200)
	d1, _, _ := s.Totals()
	s.Run(400)
	d2, _, _ := s.Totals()
	if d2 <= d1 {
		t.Errorf("second Run delivered nothing new: %d -> %d", d1, d2)
	}
	if s.Now() != 400 {
		t.Errorf("Now = %d, want 400", s.Now())
	}
}

func TestChannelLookup(t *testing.T) {
	ctrl := loadLine(t, 1, topo.HSDPS{}, 1, core.ChannelSpec{C: 1, P: 50, D: 30})
	s, _ := New(ctrl.State(), nil, Config{})
	id := ctrl.State().Channels()[0].ID
	if s.Channel(id) == nil {
		t.Error("admitted channel not found")
	}
	if s.Channel(9999) != nil {
		t.Error("phantom channel found")
	}
}
