// Package fabricsim simulates RT-channel traffic across multi-switch
// fabrics (the topo package's future-work extension), validating that
// the per-hop deadline partitioning produced by H-SDPS/H-ADPS admission
// actually bounds end-to-end delay — the same role netsim plays for the
// single-switch star.
//
// Scope: the fabric simulator carries RT traffic only and takes admitted
// channels (with their routes and hop budgets) directly from the fabric
// admission controller. The wire-protocol machinery — establishment
// handshake, frame codecs, FCFS coexistence — is already validated
// end-to-end on the star network in netsim and is hop-count agnostic, so
// it is not duplicated here; frames travel as structured records.
//
// Scheduling model per directed link: EDF by hop-local absolute deadline
// (release + cumulative hop budgets), one maximal frame per slot,
// store-and-forward, and a release-guard shaper at every intermediate
// hop (a frame becomes eligible for hop i only at its hop i-1 deadline),
// which makes every link's periodic-task feasibility model exact.
package fabricsim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/topo"
)

// rtFrame is one in-flight maximal frame (or, past a multicast branch
// point, one in-flight copy of it).
type rtFrame struct {
	ch      *channelRT
	release int64
	hop     int // index into the route currently being traversed
}

// channelRT is the runtime state of one admitted channel. A unicast
// route is the degenerate tree whose every edge has exactly one child;
// a multicast channel's frames are replicated onto every child edge at
// branch points and measured at every leaf (so Delivered counts
// per-sink deliveries).
type channelRT struct {
	id       core.ChannelID
	spec     core.ChannelSpec
	route    []topo.Edge
	parents  []int   // tree shape: edge feeding edge i (-1 = root)
	children [][]int // inverse of parents; empty children = leaf edge
	cum      []int64 // cumulative deadline at edge i: Hops[i] + cum[parents[i]]
	next     int64   // next release slot
	metrics  *Metrics

	started bool // a periodic source has been attached
	stopped bool // traffic stopped (Stop/Remove); in-flight frames drain
	armed   bool // a release event is scheduled
	gen     int  // bumped by Start/Stop/Remove to invalidate armed events
}

// Metrics aggregates per-channel results.
type Metrics struct {
	Delivered int64
	Misses    int64
	Delays    *stats.Delay
}

// link is one directed edge's transmitter: an EDF queue served one frame
// per slot.
type link struct {
	eng   *sim.Engine
	queue sched.EDFQueue
	busy  bool
	armed bool
	sim   *Sim
}

// Sim is one fabric simulation run.
type Sim struct {
	eng      *sim.Engine
	links    map[topo.Edge]*link
	down     map[topo.Edge]bool // dead directed edges: frames on them drop
	channels []*channelRT
	byID     map[core.ChannelID]*channelRT
	horizon  int64
	shaping  bool
	tracer   netsim.Tracer
}

// SetTracer installs a flight-recorder tracer; nil disables tracing
// (the default). The fabric emits the same netsim.TraceEvent vocabulary
// as the star simulator — releases, shaper holds, deliveries, misses,
// admissions — so one consumer serves both topologies; the star≡fabric
// event-kind parity is pinned by rtether's trace tests.
func (s *Sim) SetTracer(t netsim.Tracer) { s.tracer = t }

// emit sends one event to the installed tracer, if any.
func (s *Sim) emit(kind netsim.EventKind, node core.NodeID, ch core.ChannelID, value int64) {
	if s.tracer == nil {
		return
	}
	s.tracer.Trace(netsim.TraceEvent{At: s.eng.Now(), Kind: kind, Node: node, Channel: ch, Value: value})
}

// TraceAdmission reports an establishment verdict to the tracer: the
// star switch emits these from its wire handshake, which the fabric does
// not model, so the fabric backend calls this at the same decision
// points (admitted channels also trace on Install).
func (s *Sim) TraceAdmission(src core.NodeID, ch core.ChannelID, accepted bool, firstHop int64) {
	if accepted {
		s.emit(netsim.EvAdmitted, src, ch, firstHop)
		return
	}
	s.emit(netsim.EvRejected, src, 0, 0)
}

// Config tunes the fabric simulation.
type Config struct {
	// DisableShaping turns off the per-hop release guard (for ablation).
	DisableShaping bool
}

// NewSim returns an empty incremental simulation. Channels are installed
// with Install as admission accepts them and start generating traffic
// only after Start — the dynamic counterpart of the batch constructor New.
func NewSim(cfg Config) *Sim {
	return &Sim{
		eng:     sim.NewEngine(),
		links:   make(map[topo.Edge]*link),
		down:    make(map[topo.Edge]bool),
		byID:    make(map[core.ChannelID]*channelRT),
		shaping: !cfg.DisableShaping,
	}
}

// New builds a simulation over the admitted channels of a fabric
// controller state. Offsets gives the release phase per channel (missing
// entries mean 0). Every channel is started immediately.
func New(st *topo.State, offsets map[core.ChannelID]int64, cfg Config) (*Sim, error) {
	s := NewSim(cfg)
	for _, hch := range st.Channels() {
		if err := s.Install(hch); err != nil {
			return nil, err
		}
		if err := s.Start(hch.ID, offsets[hch.ID]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Install registers an admitted channel with the simulation without
// attaching a traffic source. The route and hop budgets are copied; use
// SetBudgets when a later admission repartitions the channel.
func (s *Sim) Install(hch *topo.HChannel) error {
	if len(hch.Route) == 0 || len(hch.Hops) != len(hch.Route) {
		return fmt.Errorf("fabricsim: channel %v has no installed hop budgets", hch)
	}
	if old := s.byID[hch.ID]; old != nil && !old.stopped {
		return fmt.Errorf("fabricsim: channel %d already installed", hch.ID)
	}
	parents := treeParents(hch)
	rt := &channelRT{
		id:       hch.ID,
		spec:     hch.Spec,
		route:    append([]topo.Edge(nil), hch.Route...),
		parents:  parents,
		children: treeChildren(parents),
		cum:      cumBudgets(hch.Hops, parents),
		metrics:  &Metrics{Delays: stats.NewDelay(0)},
	}
	s.channels = append(s.channels, rt)
	s.byID[hch.ID] = rt
	for _, e := range rt.route {
		if s.links[e] == nil {
			s.links[e] = &link{eng: s.eng, sim: s}
		}
	}
	s.emit(netsim.EvAdmitted, rt.spec.Src, rt.id, hch.Hops[0])
	return nil
}

// SetBudgets replaces a channel's per-hop deadline budgets (the DPS is a
// function of the whole system state, so admitting or releasing one
// channel may repartition the others). Frames released from now on use
// the new budgets; frames in flight keep moving under the vector they
// were released with, hop indices being stable because routes never
// change. The route length must match.
func (s *Sim) SetBudgets(id core.ChannelID, hops []int64) error {
	ch := s.byID[id]
	if ch == nil {
		return fmt.Errorf("fabricsim: unknown channel %d", id)
	}
	if len(hops) != len(ch.route) {
		return fmt.Errorf("fabricsim: budget vector length %d for %d hops", len(hops), len(ch.route))
	}
	ch.cum = cumBudgets(hops, ch.parents)
	return nil
}

// Start attaches the periodic source of an installed channel: C frames
// every P slots, first release offset slots from now.
func (s *Sim) Start(id core.ChannelID, offset int64) error {
	ch := s.byID[id]
	if ch == nil {
		return fmt.Errorf("fabricsim: unknown channel %d", id)
	}
	if ch.started && !ch.stopped {
		return fmt.Errorf("fabricsim: channel %d already has a source", id)
	}
	if offset < 0 {
		return fmt.Errorf("fabricsim: negative release offset %d", offset)
	}
	ch.started = true
	ch.stopped = false
	ch.gen++ // orphan any release event armed before the restart
	ch.armed = false
	ch.next = s.eng.Now() + offset
	s.armRelease(ch)
	return nil
}

// Stop detaches a channel's traffic source. Frames already released keep
// traversing the fabric and are measured on delivery.
func (s *Sim) Stop(id core.ChannelID) error {
	ch := s.byID[id]
	if ch == nil || !ch.started || ch.stopped {
		return fmt.Errorf("fabricsim: channel %d has no active source", id)
	}
	ch.stopped = true
	ch.gen++
	ch.armed = false
	return nil
}

// Remove stops a channel and forgets its registration so the ID can be
// reused by a later admission. Accumulated metrics remain readable.
func (s *Sim) Remove(id core.ChannelID) error {
	ch := s.byID[id]
	if ch == nil {
		return fmt.Errorf("fabricsim: unknown channel %d", id)
	}
	ch.stopped = true
	ch.gen++
	ch.armed = false
	delete(s.byID, id)
	return nil
}

// SetLinkUp marks one directed edge up or down. Downing an edge purges
// its queued frames — each counts as a miss for its channel, the
// paper-faithful accounting for data lost to a failure — and every frame
// subsequently injected on, or arriving over, a dead edge is dropped the
// same way. Repair (up=true) only clears the flag; traffic resumes with
// the next release.
func (s *Sim) SetLinkUp(e topo.Edge, up bool) {
	if up {
		delete(s.down, e)
		return
	}
	if s.down[e] {
		return
	}
	s.down[e] = true
	if l := s.links[e]; l != nil {
		for {
			it, ok := l.queue.Pop()
			if !ok {
				break
			}
			s.drop(it.Payload.(*rtFrame))
		}
	}
}

// Reroute replaces the route and budgets of an installed channel after a
// failure re-admission, keeping its identity and metrics: the old
// incarnation's source is detached (in-flight frames drain — or die on
// dead edges — under their old route), and a new incarnation adopts the
// same Metrics aggregate plus the old periodic release schedule, so
// delivery history and phase both survive the reroute.
func (s *Sim) Reroute(hch *topo.HChannel) error {
	old := s.byID[hch.ID]
	if old == nil {
		return fmt.Errorf("fabricsim: unknown channel %d", hch.ID)
	}
	if len(hch.Route) == 0 || len(hch.Hops) != len(hch.Route) {
		return fmt.Errorf("fabricsim: channel %v has no installed hop budgets", hch)
	}
	pendingRelease := old.armed // a scheduled release the gen bump orphans
	old.stopped = true
	old.gen++
	old.armed = false
	delete(s.byID, hch.ID)

	parents := treeParents(hch)
	rt := &channelRT{
		id:       hch.ID,
		spec:     hch.Spec,
		route:    append([]topo.Edge(nil), hch.Route...),
		parents:  parents,
		children: treeChildren(parents),
		cum:      cumBudgets(hch.Hops, parents),
		metrics:  old.metrics,
	}
	s.channels = append(s.channels, rt)
	s.byID[hch.ID] = rt
	for _, e := range rt.route {
		if s.links[e] == nil {
			s.links[e] = &link{eng: s.eng, sim: s}
		}
	}
	if old.started {
		rt.started = true
		rt.next = old.next
		if pendingRelease {
			rt.next -= old.spec.P // re-arm the orphaned release
		}
		if rt.next < s.eng.Now() {
			rt.next = s.eng.Now()
		}
		s.armRelease(rt)
	}
	return nil
}

// drop accounts one frame lost to a dead edge: a miss for its channel.
func (s *Sim) drop(f *rtFrame) {
	f.ch.metrics.Misses++
	s.emit(netsim.EvMiss, f.ch.spec.Dst, f.ch.id, -1)
}

// treeParents extracts the parent-index form of a channel's route —
// the explicit tree for multicast, the implicit chain for unicast.
func treeParents(hch *topo.HChannel) []int {
	if hch.Parents != nil {
		return append([]int(nil), hch.Parents...)
	}
	parents := make([]int, len(hch.Route))
	for i := range parents {
		parents[i] = i - 1
	}
	return parents
}

// treeChildren inverts a parent-index vector (parents[i] < i holds by
// construction, so child lists come out in edge order).
func treeChildren(parents []int) [][]int {
	children := make([][]int, len(parents))
	for i, p := range parents {
		if p >= 0 {
			children[p] = append(children[p], i)
		}
	}
	return children
}

// cumBudgets accumulates per-edge deadline budgets down the tree:
// cum[i] = hops[i] + cum[parents[i]] is the frame's hop-local absolute
// deadline offset at edge i. On a chain this is the plain prefix sum.
func cumBudgets(hops []int64, parents []int) []int64 {
	cum := make([]int64, len(hops))
	for i, h := range hops {
		cum[i] = h
		if p := parents[i]; p >= 0 {
			cum[i] += cum[p]
		}
	}
	return cum
}

// Run advances the simulation to the absolute slot horizon; callable
// repeatedly with increasing horizons.
func (s *Sim) Run(horizon int64) {
	if horizon > s.horizon {
		s.horizon = horizon
	}
	for _, ch := range s.channels {
		s.armRelease(ch)
	}
	s.eng.RunUntil(s.horizon)
}

// armRelease schedules the channel's next periodic release if it falls
// within the horizon.
func (s *Sim) armRelease(ch *channelRT) {
	if ch.armed || !ch.started || ch.stopped || ch.next > s.horizon {
		return
	}
	release := ch.next
	ch.next += ch.spec.P
	ch.armed = true
	gen := ch.gen
	s.eng.AtPrio(release, sim.PrioRelease, func() {
		if ch.gen != gen {
			return // superseded by a Stop/Start cycle; the restart re-armed
		}
		ch.armed = false
		if ch.stopped {
			return
		}
		for k := int64(0); k < ch.spec.C; k++ {
			s.emit(netsim.EvRelease, ch.spec.Src, ch.id, release+ch.spec.D)
			s.inject(&rtFrame{ch: ch, release: release, hop: 0})
		}
		s.armRelease(ch)
	})
}

// inject enqueues a frame at its current hop under the hop-local EDF key.
// Frames bound for a dead edge are dropped as misses.
func (s *Sim) inject(f *rtFrame) {
	e := f.ch.route[f.hop]
	if s.down[e] {
		s.drop(f)
		return
	}
	l := s.links[e]
	l.queue.Push(f.release+f.ch.cum[f.hop], f)
	l.kick()
}

func (l *link) kick() {
	if l.busy || l.armed || l.queue.Len() == 0 {
		return
	}
	l.armed = true
	l.eng.AtPrio(l.eng.Now(), sim.PrioDecide, l.decide)
}

func (l *link) decide() {
	l.armed = false
	if l.busy {
		return
	}
	it, ok := l.queue.Pop()
	if !ok {
		return
	}
	f := it.Payload.(*rtFrame)
	l.busy = true
	l.eng.AtPrio(l.eng.Now()+1, sim.PrioDeliver, func() {
		l.busy = false
		l.kick()
		l.sim.arrive(f)
	})
}

// arrive handles a frame completing one hop: final delivery measurement
// at a leaf edge, or hand-off (optionally shaped) to every child edge —
// at a multicast branch point the frame is replicated, one copy per
// subtree, each measured independently at its own leaf.
func (s *Sim) arrive(f *rtFrame) {
	if s.down[f.ch.route[f.hop]] {
		// The edge died while the frame was in transit on it.
		s.drop(f)
		return
	}
	now := s.eng.Now()
	kids := f.ch.children[f.hop]
	if len(kids) == 0 {
		delay := now - f.release
		f.ch.metrics.Delivered++
		f.ch.metrics.Delays.Observe(delay)
		sink := f.ch.spec.Dst
		if leaf := f.ch.route[f.hop].To; !leaf.Switch {
			sink = core.NodeID(leaf.ID) // multicast: attribute to the actual sink
		}
		s.emit(netsim.EvDeliver, sink, f.ch.id, delay)
		if delay > f.ch.spec.D {
			f.ch.metrics.Misses++
			s.emit(netsim.EvMiss, sink, f.ch.id, delay)
		}
		return
	}
	prevDeadline := f.release + f.ch.cum[f.hop]
	for i, next := range kids {
		nf := f
		if i > 0 {
			nf = &rtFrame{ch: f.ch, release: f.release}
		}
		nf.hop = next
		if s.shaping && prevDeadline > now {
			held := nf
			s.emit(netsim.EvShaperHold, f.ch.spec.Dst, f.ch.id, prevDeadline)
			s.eng.At(prevDeadline, func() { s.inject(held) })
			continue
		}
		s.inject(nf)
	}
}

// Channel returns the metrics of one channel, or nil. For a removed
// channel whose ID was since reused, the newest incarnation wins.
func (s *Sim) Channel(id core.ChannelID) *Metrics {
	if ch := s.byID[id]; ch != nil {
		return ch.metrics
	}
	for i := len(s.channels) - 1; i >= 0; i-- {
		if s.channels[i].id == id {
			return s.channels[i].metrics
		}
	}
	return nil
}

// ChannelIDs returns the distinct ID of every channel ever installed, in
// first-install order. Released channels stay listed — their accumulated
// metrics remain readable through Channel, which reports the newest
// incarnation when an ID was reused.
func (s *Sim) ChannelIDs() []core.ChannelID {
	seen := make(map[core.ChannelID]bool, len(s.channels))
	ids := make([]core.ChannelID, 0, len(s.channels))
	for _, ch := range s.channels {
		if !seen[ch.id] {
			seen[ch.id] = true
			ids = append(ids, ch.id)
		}
	}
	return ids
}

// Totals sums delivered frames, misses and the worst observed delay.
func (s *Sim) Totals() (delivered, misses, worst int64) {
	for _, ch := range s.channels {
		delivered += ch.metrics.Delivered
		misses += ch.metrics.Misses
		if m := ch.metrics.Delays.Max(); m > worst {
			worst = m
		}
	}
	return delivered, misses, worst
}

// Now returns the simulation clock.
func (s *Sim) Now() int64 { return s.eng.Now() }

// Schedule registers fn at the absolute slot t (clamped to the current
// clock), for custom generators and experiment drivers.
func (s *Sim) Schedule(t int64, fn func()) {
	if now := s.eng.Now(); t < now {
		t = now
	}
	s.eng.At(t, fn)
}
