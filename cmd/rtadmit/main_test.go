package main

import (
	"fmt"
	"strings"
	"testing"
)

func TestAcceptAndReject(t *testing.T) {
	// Seven channels on one uplink under SDPS: six accepted.
	var in strings.Builder
	for i := 0; i < 7; i++ {
		in.WriteString("1 10")
		in.WriteByte(byte('0' + i))
		in.WriteString(" 3 100 40\n")
	}
	var out, errOut strings.Builder
	code := run([]string{"-dps", "sdps"}, strings.NewReader(in.String()), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	if got := strings.Count(s, "ACCEPT"); got != 6 {
		t.Errorf("ACCEPT lines = %d, want 6\n%s", got, s)
	}
	if got := strings.Count(s, "REJECT"); got != 1 {
		t.Errorf("REJECT lines = %d, want 1", got)
	}
	if !strings.Contains(s, "6 accepted") || !strings.Contains(s, "1 rejected") {
		t.Errorf("summary missing:\n%s", s)
	}
	if !strings.Contains(s, "d_up=20 d_down=20") {
		t.Errorf("SDPS partition not reported:\n%s", s)
	}
}

func TestCommentsAndBlanksSkipped(t *testing.T) {
	input := "# header comment\n\n1 2 3 100 40\n"
	var out, errOut strings.Builder
	if code := run(nil, strings.NewReader(input), &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "1 requests, 1 accepted") {
		t.Errorf("summary wrong:\n%s", out.String())
	}
}

func TestQuietMode(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-q"}, strings.NewReader("1 2 3 100 40\n"), &out, &errOut)
	if code != 0 {
		t.Fatal("exit", code)
	}
	if strings.Contains(out.String(), "ACCEPT") {
		t.Error("-q printed per-request lines")
	}
	if !strings.Contains(out.String(), "summary") {
		t.Error("-q suppressed the summary")
	}
}

func TestMalformedLine(t *testing.T) {
	var out, errOut strings.Builder
	code := run(nil, strings.NewReader("not a spec\n"), &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), "line 1") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestUnknownDPS(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dps", "xyz"}, strings.NewReader(""), &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestADPSPartitionReported(t *testing.T) {
	// Five channels from one master: ADPS settles at up=33/down=7.
	var in strings.Builder
	for i := 0; i < 5; i++ {
		in.WriteString("1 10")
		in.WriteByte(byte('0' + i))
		in.WriteString(" 3 100 40\n")
	}
	var out, errOut strings.Builder
	if code := run([]string{"-dps", "adps"}, strings.NewReader(in.String()), &out, &errOut); code != 0 {
		t.Fatal("exit", code)
	}
	if !strings.Contains(out.String(), "ADPS") {
		t.Error("scheme name missing from summary")
	}
}

func TestDumpSnapshot(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-q", "-dump"}, strings.NewReader("1 2 3 100 40\n5 6 2 50 20\n"), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{`"id": 1`, `"up": 20`, `"down": 20`, `"src": 5`} {
		if !strings.Contains(s, want) {
			t.Errorf("snapshot missing %q:\n%s", want, s)
		}
	}
}

func TestBatchAcceptsAll(t *testing.T) {
	input := "1 100 3 100 40\n2 101 3 100 40\n3 102 3 100 40\n"
	var out, errOut strings.Builder
	code := run([]string{"-dps", "adps", "-batch"}, strings.NewReader(input), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	if got := strings.Count(s, "ACCEPT"); got != 3 {
		t.Errorf("ACCEPT lines = %d, want 3\n%s", got, s)
	}
	if !strings.Contains(s, "3 requests, 3 accepted") {
		t.Errorf("summary wrong:\n%s", s)
	}
}

func TestBatchAllOrNothing(t *testing.T) {
	// Seven channels on one uplink under SDPS: sequentially six fit, but
	// as one batch the whole set is refused.
	var in strings.Builder
	for i := 0; i < 7; i++ {
		in.WriteString("1 10")
		in.WriteByte(byte('0' + i))
		in.WriteString(" 3 100 40\n")
	}
	var out, errOut strings.Builder
	code := run([]string{"-dps", "sdps", "-batch"}, strings.NewReader(in.String()), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, "BATCH REJECT") {
		t.Errorf("batch rejection not reported:\n%s", s)
	}
	if strings.Contains(s, "ACCEPT") {
		t.Errorf("all-or-nothing batch printed ACCEPT lines:\n%s", s)
	}
	if !strings.Contains(s, "7 requests, 0 accepted") {
		t.Errorf("summary wrong:\n%s", s)
	}
}

func TestInvalidSpecRejectedWithReason(t *testing.T) {
	var out, errOut strings.Builder
	// D < 2C.
	if code := run(nil, strings.NewReader("1 2 3 100 5\n"), &out, &errOut); code != 0 {
		t.Fatal("exit", code)
	}
	if !strings.Contains(out.String(), "REJECT") ||
		!strings.Contains(out.String(), "store-and-forward") {
		t.Errorf("rejection reason missing:\n%s", out.String())
	}
}

func TestWorkersFlagDecisionsIdentical(t *testing.T) {
	// A batch wide enough to engage the parallel verification sweep; the
	// output (per-request decisions, summary, feasibility-test count)
	// must be byte-identical for any -workers value.
	var in strings.Builder
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&in, "%d %d 1 500 %d\n", 1+i%12, 101+i%12, 60+i%30)
	}
	runWith := func(workers string) string {
		var out, errOut strings.Builder
		code := run([]string{"-dps", "adps", "-batch", "-workers", workers},
			strings.NewReader(in.String()), &out, &errOut)
		if code != 0 {
			t.Fatalf("workers=%s: exit %d: %s", workers, code, errOut.String())
		}
		return out.String()
	}
	if one, many := runWith("1"), runWith("8"); one != many {
		t.Errorf("-workers changed the output:\n--- workers=1\n%s\n--- workers=8\n%s", one, many)
	}
}

func TestScenarioReplay(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-scenario", "../rtsim/testdata/dynamic.json"},
		strings.NewReader(""), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errOut.String(), out.String())
	}
	s := out.String()
	for _, want := range []string{
		"static load: 2 accepted, 0 rejected",
		"establish     video            ACCEPT",
		"reconfigure   ctrl             ACCEPT",
		`summary (scenario "two-cell line with churn")`,
		"mean link utilization",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
	// Admission-only replay never simulates traffic: no VERDICT line.
	if strings.Contains(s, "VERDICT") {
		t.Errorf("replay printed a simulation verdict:\n%s", s)
	}
}

func TestScenarioReplayQuiet(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-scenario", "../rtsim/testdata/dynamic.json", "-q"},
		strings.NewReader(""), &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if strings.Contains(out.String(), "slot ") {
		t.Errorf("-q still printed per-event lines:\n%s", out.String())
	}
}

func TestScenarioReplayMissingFile(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-scenario", "nope.json"}, strings.NewReader(""), &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestScenarioReplayDumpRejectedOnFabric(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-scenario", "../rtsim/testdata/dynamic.json", "-dump"},
		strings.NewReader(""), &out, &errOut)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (up-front rejection)", code)
	}
	if !strings.Contains(errOut.String(), "star scenario") {
		t.Errorf("missing star-only diagnostic: %s", errOut.String())
	}
}
