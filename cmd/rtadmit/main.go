// Command rtadmit is an offline admission-control what-if tool: it reads
// RT channel requests (one per line: "src dst C P D"), feeds them to the
// switch's feasibility test under the selected deadline partitioning
// scheme, and reports each decision with its reason plus a final system
// summary.
//
//	echo "1 100 3 100 40" | rtadmit -dps adps
//	rtadmit -dps sdps -f requests.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtadmit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dpsName = fs.String("dps", "sdps", "deadline partitioning scheme: sdps | adps")
		file    = fs.String("f", "-", "requests file ('-' = stdin)")
		quiet   = fs.Bool("q", false, "suppress per-request lines, print only the summary")
		dump    = fs.Bool("dump", false, "emit the accepted channels as a JSON snapshot instead of the summary")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	dps, err := parseDPS(*dpsName)
	if err != nil {
		fmt.Fprintf(stderr, "rtadmit: %v\n", err)
		return 2
	}

	in := stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintf(stderr, "rtadmit: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}

	ctrl := core.NewController(core.Config{DPS: dps})
	scanner := bufio.NewScanner(in)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var src, dst uint16
		var c, p, d int64
		if _, err := fmt.Sscanf(line, "%d %d %d %d %d", &src, &dst, &c, &p, &d); err != nil {
			fmt.Fprintf(stderr, "rtadmit: line %d: want 'src dst C P D': %v\n", lineNo, err)
			return 1
		}
		spec := core.ChannelSpec{
			Src: core.NodeID(src), Dst: core.NodeID(dst), C: c, P: p, D: d,
		}
		ch, err := ctrl.Request(spec)
		if *quiet {
			continue
		}
		if err != nil {
			fmt.Fprintf(stdout, "line %-4d REJECT %v: %v\n", lineNo, spec, err)
			continue
		}
		fmt.Fprintf(stdout, "line %-4d ACCEPT %v as RT#%d (d_up=%d d_down=%d)\n",
			lineNo, spec, ch.ID, ch.Part.Up, ch.Part.Down)
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(stderr, "rtadmit: read: %v\n", err)
		return 1
	}

	if *dump {
		if err := ctrl.WriteSnapshot(stdout); err != nil {
			fmt.Fprintf(stderr, "rtadmit: snapshot: %v\n", err)
			return 1
		}
		return 0
	}

	st := ctrl.Stats()
	fmt.Fprintf(stdout, "\nsummary (%s): %d requests, %d accepted, %d rejected "+
		"(%d invalid, %d utilization, %d demand), %d feasibility tests run\n",
		dps.Name(), st.Requests, st.Accepted,
		st.Requests-st.Accepted, st.RejectedInvalid,
		st.RejectedUtilization, st.RejectedDemand, st.LinksChecked)
	fmt.Fprintf(stdout, "mean link utilization: %.4f over %d loaded links\n",
		ctrl.State().TotalUtilization(), len(ctrl.State().Links()))
	return 0
}

func parseDPS(name string) (core.DPS, error) {
	switch name {
	case "sdps":
		return core.SDPS{}, nil
	case "adps":
		return core.ADPS{}, nil
	default:
		return nil, fmt.Errorf("unknown -dps %q (want sdps or adps)", name)
	}
}
