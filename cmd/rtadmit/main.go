// Command rtadmit is an offline admission-control what-if tool: it reads
// RT channel requests (one per line: "src dst C P D"), plays them
// against a network's admission control under the selected deadline
// partitioning scheme, and reports each decision with its reason plus a
// final system summary. Rejections carry the rtether.AdmissionError
// diagnostics: the saturated link, its direction, and its utilization.
//
// With -batch the whole request set is admitted as one atomic decision
// through Network.EstablishAll — one repartition and one verification
// sweep instead of one per request, which is the scalable path for large
// provisioning files. Either every request is accepted or the batch is
// rejected with the first failure's diagnostics. -workers sizes the
// verification worker pool for that sweep (0 = GOMAXPROCS, 1 =
// sequential); decisions and diagnostics are identical at any count.
//
// With -scenario the tool replays a declarative scenario file's whole
// timeline — static load, establish/release/reconfigure events, churn
// streams — against admission control alone: no traffic is simulated and
// no virtual time passes, so even 10k-channel churn workloads answer
// "what would admission decide" in milliseconds. The scenario's own
// topology (star or multi-switch fabric) and DPS apply; -dps is ignored.
//
//	echo "1 100 3 100 40" | rtadmit -dps adps
//	rtadmit -dps sdps -f requests.txt
//	rtadmit -dps adps -batch -workers 8 -f provisioning.txt
//	rtadmit -scenario plant.json -q
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"repro/internal/scenario"
	"repro/rtether"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtadmit", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		dpsName = fs.String("dps", "sdps", "deadline partitioning scheme: sdps | adps")
		file    = fs.String("f", "-", "requests file ('-' = stdin)")
		quiet   = fs.Bool("q", false, "suppress per-request lines, print only the summary")
		dump    = fs.Bool("dump", false, "emit the accepted channels as a JSON snapshot instead of the summary")
		batch   = fs.Bool("batch", false, "admit all requests as one atomic batch (EstablishAll) instead of one by one")
		workers = fs.Int("workers", 0, "verification worker pool for batch sweeps (0 = GOMAXPROCS, 1 = sequential); decisions are identical at any count")
		scen    = fs.String("scenario", "", "replay a JSON scenario timeline against admission control only (ignores -dps and request input)")
		cpuProf = fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProf = fs.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "rtadmit: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rtadmit: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintf(stderr, "rtadmit: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "rtadmit: %v\n", err)
			}
			f.Close()
		}()
	}

	if *scen != "" {
		return replayScenario(*scen, *workers, *quiet, *dump, stdout, stderr)
	}

	dps, err := parseDPS(*dpsName)
	if err != nil {
		fmt.Fprintf(stderr, "rtadmit: %v\n", err)
		return 2
	}

	in := stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintf(stderr, "rtadmit: %v\n", err)
			return 1
		}
		defer f.Close()
		in = f
	}

	net := rtether.New(rtether.WithDPS(dps), rtether.WithVerifyWorkers(*workers))
	known := make(map[rtether.NodeID]bool)
	ensure := func(id rtether.NodeID) {
		if !known[id] {
			known[id] = true
			net.MustAddNode(id)
		}
	}

	rejectLine := func(lineNo int, spec rtether.ChannelSpec, err error) {
		var ae *rtether.AdmissionError
		if errors.As(err, &ae) {
			fmt.Fprintf(stdout, "line %-4d REJECT %v: %s (%s) %s\n",
				lineNo, spec, ae.Link, ae.Dir, ae.Reason)
		} else {
			fmt.Fprintf(stdout, "line %-4d REJECT %v: %v\n", lineNo, spec, err)
		}
	}

	// Sequential mode decides (and prints) request by request as lines
	// arrive; batch mode collects the whole file for one EstablishAll.
	type request struct {
		lineNo int
		spec   rtether.ChannelSpec
	}
	var requests []request
	scanner := bufio.NewScanner(in)
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := strings.TrimSpace(scanner.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var src, dst uint16
		var c, p, d int64
		if _, err := fmt.Sscanf(line, "%d %d %d %d %d", &src, &dst, &c, &p, &d); err != nil {
			fmt.Fprintf(stderr, "rtadmit: line %d: want 'src dst C P D': %v\n", lineNo, err)
			return 1
		}
		ensure(rtether.NodeID(src))
		ensure(rtether.NodeID(dst))
		spec := rtether.ChannelSpec{
			Src: rtether.NodeID(src), Dst: rtether.NodeID(dst), C: c, P: p, D: d,
		}
		if *batch {
			requests = append(requests, request{lineNo: lineNo, spec: spec})
			continue
		}
		ch, err := net.Establish(spec)
		if *quiet {
			continue
		}
		if err != nil {
			rejectLine(lineNo, spec, err)
			continue
		}
		b := ch.Budgets()
		fmt.Fprintf(stdout, "line %-4d ACCEPT %v as RT#%d (d_up=%d d_down=%d)\n",
			lineNo, spec, ch.ID(), b[0], b[1])
	}
	if err := scanner.Err(); err != nil {
		fmt.Fprintf(stderr, "rtadmit: read: %v\n", err)
		return 1
	}

	if *batch {
		specs := make([]rtether.ChannelSpec, len(requests))
		for i, r := range requests {
			specs[i] = r.spec
		}
		chs, err := net.EstablishAll(specs)
		if err != nil {
			if !*quiet {
				fmt.Fprintf(stdout, "BATCH REJECT (%d requests): all-or-nothing admission failed\n", len(specs))
				var ae *rtether.AdmissionError
				if errors.As(err, &ae) {
					// Recover the input line of the rejected spec for the
					// usual line-numbered diagnostic.
					lineNo := 0
					for _, r := range requests {
						if r.spec == ae.Spec {
							lineNo = r.lineNo
							break
						}
					}
					rejectLine(lineNo, ae.Spec, err)
				} else {
					fmt.Fprintf(stdout, "reason: %v\n", err)
				}
			}
		} else if !*quiet {
			for i, ch := range chs {
				b := ch.Budgets()
				fmt.Fprintf(stdout, "line %-4d ACCEPT %v as RT#%d (d_up=%d d_down=%d)\n",
					requests[i].lineNo, requests[i].spec, ch.ID(), b[0], b[len(b)-1])
			}
		}
	}

	if *dump {
		if err := net.WriteSnapshot(stdout); err != nil {
			fmt.Fprintf(stderr, "rtadmit: snapshot: %v\n", err)
			return 1
		}
		return 0
	}

	st := net.AdmissionStats()
	fmt.Fprintf(stdout, "\nsummary (%s): %d requests, %d accepted, %d rejected "+
		"(%d invalid, %d utilization, %d demand), %d feasibility tests run\n",
		dps.Name(), st.Requests, st.Accepted,
		st.Requests-st.Accepted, st.RejectedInvalid,
		st.RejectedUtilization, st.RejectedDemand, st.LinksChecked)
	fmt.Fprintf(stdout, "mean link utilization: %.4f over %d loaded links\n",
		st.MeanLinkUtilization, st.LoadedLinks)
	return 0
}

// replayScenario plays a scenario file's timeline against the admission
// kernel: per-event decisions, then the usual summary (or -dump
// snapshot). Traffic, background flows and virtual time are skipped —
// only the establish/release/reconfigure decisions run.
func replayScenario(path string, workers int, quiet, dump bool, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "rtadmit: %v\n", err)
		return 1
	}
	defer f.Close()
	s, err := scenario.Load(f)
	if err != nil {
		fmt.Fprintf(stderr, "rtadmit: %v\n", err)
		return 1
	}
	// Snapshots are a star feature; reject the combination before
	// replaying anything.
	if dump && s.Fabric() {
		fmt.Fprintf(stderr, "rtadmit: -dump needs a star scenario (snapshots are not supported on multi-switch networks yet)\n")
		return 2
	}
	res, err := s.Replay(workers)
	if err != nil {
		fmt.Fprintf(stderr, "rtadmit: %v\n", err)
		return 1
	}
	if !quiet {
		fmt.Fprintf(stdout, "static load: %d accepted, %d rejected (optional)\n",
			len(res.Accepted), res.Rejected)
		for _, ev := range res.Events {
			fmt.Fprintln(stdout, ev)
		}
	}
	if dump {
		if err := res.Network.WriteSnapshot(stdout); err != nil {
			fmt.Fprintf(stderr, "rtadmit: snapshot: %v\n", err)
			return 1
		}
		return 0
	}
	st := res.Network.AdmissionStats()
	fmt.Fprintf(stdout, "\nsummary (scenario %q): %d requests, %d accepted, %d rejected "+
		"(%d invalid, %d utilization, %d demand), %d feasibility tests run\n",
		s.Name, st.Requests, st.Accepted,
		st.Requests-st.Accepted, st.RejectedInvalid,
		st.RejectedUtilization, st.RejectedDemand, st.LinksChecked)
	fmt.Fprintf(stdout, "mean link utilization: %.4f over %d loaded links\n",
		st.MeanLinkUtilization, st.LoadedLinks)
	return 0
}

func parseDPS(name string) (rtether.DPS, error) {
	switch name {
	case "sdps":
		return rtether.SDPS(), nil
	case "adps":
		return rtether.ADPS(), nil
	default:
		return nil, fmt.Errorf("unknown -dps %q (want sdps or adps)", name)
	}
}
