// Command rtload is the load harness for rtetherd: it replays a
// scenario document's establish/release workload — including the
// synthesized churn-generator streams (docs/scenario-format.md) —
// against a running daemon from many concurrent client goroutines, at
// full speed, and emits latency/throughput percentiles as a BENCH JSON
// artifact (internal/benchfmt, the same format `rtexp -parsebench`
// produces, so CI merges both into one document).
//
//	rtload -addr 127.0.0.1:8316 -scenario fabric.json -clients 16 -out BENCH_rtload.json
//	rtload -proto binary -binaddr 127.0.0.1:8317 -scenario fabric.json -append -out BENCH_rtload.json
//
// -proto selects the transport (json over HTTP, or the daemon's binary
// listener via -binaddr); benchmark names carry a proto=… suffix and
// -append merges a run into an existing BENCH file, so one artifact can
// hold both transports' percentiles side by side.
//
// The replay machinery itself — workload sharding by channel name,
// concurrent client goroutines, latency aggregation — lives in
// internal/loadgen, shared with the sweep orchestrator's daemon mode
// (rtexp -sweep). Admission rejections are expected outcomes
// (saturating the network is usually the point); transport failures and
// unclassified server errors are protocol errors, and any protocol
// error makes rtload exit non-zero — CI's smoke job asserts a clean run
// that way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/loadgen"
	"repro/internal/scenario"
	"repro/rtether/client"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run drives the whole load run and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8316", "rtetherd address (host:port or http:// URL)")
		binaddr  = fs.String("binaddr", "", "daemon binary-protocol address (required with -proto binary)")
		proto    = fs.String("proto", "json", "transport for the latency-critical calls: json or binary")
		scenFile = fs.String("scenario", "", "scenario document providing the workload (required)")
		clients  = fs.Int("clients", 8, "concurrent client goroutines")
		maxOps   = fs.Int("maxops", 0, "cap on workload items (0 = whole workload)")
		out      = fs.String("out", "-", "BENCH JSON output file ('-' = stdout)")
		appendTo = fs.Bool("append", false, "merge this run into an existing -out file instead of overwriting it")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the load run to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scenFile == "" {
		fmt.Fprintln(stderr, "rtload: -scenario is required")
		return 2
	}
	if *clients < 1 {
		*clients = 1
	}
	f, err := os.Open(*scenFile)
	if err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	sc, err := scenario.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	items, skippedKinds, err := sc.Workload()
	if err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	if *maxOps > 0 && len(items) > *maxOps {
		items = items[:*maxOps]
	}
	if len(items) == 0 {
		fmt.Fprintln(stderr, "rtload: scenario has no establish/release workload")
		return 1
	}
	if skippedKinds > 0 {
		fmt.Fprintf(stderr, "rtload: note: %d timeline events have no wire equivalent (reconfigure/setBackground) and were skipped\n", skippedKinds)
	}

	var copts []client.Option
	switch *proto {
	case "json":
	case "binary":
		if *binaddr == "" {
			fmt.Fprintln(stderr, "rtload: -proto binary requires -binaddr")
			return 2
		}
		copts = append(copts, client.WithTransport(client.TransportBinary), client.WithBinaryAddr(*binaddr))
	default:
		fmt.Fprintf(stderr, "rtload: unknown -proto %q (want json or binary)\n", *proto)
		return 2
	}
	cl := client.New(*addr, copts...)
	defer cl.CloseIdleConnections()
	if err := cl.Healthz(ctx); err != nil {
		fmt.Fprintf(stderr, "rtload: daemon not reachable: %v\n", err)
		return 1
	}
	statsBefore, err := cl.Stats(ctx)
	if err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	// Scrape the Prometheus exposition around the run: differencing the
	// two maps attributes server-side counters (cache hit-rate, flights,
	// coalesce merges) to this run in the BENCH artifact. A daemon
	// without /metrics (older build) degrades to the /v1/stats deltas.
	promBefore, promErr := cl.MetricsProm(ctx)

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	res := loadgen.Run(ctx, cl, items, *clients)
	estAll, relAll := res.Establish, res.Release
	protoErrs := res.ProtoErrs()
	ops := res.Ops()

	statsAfter, statsErr := cl.Stats(ctx)
	coalesced := ""
	if statsErr == nil {
		de := statsAfter.Server.Establishes - statsBefore.Server.Establishes
		df := statsAfter.Server.Flights - statsBefore.Server.Flights
		dr := statsAfter.Admission.Repartitions - statsBefore.Admission.Repartitions
		coalesced = fmt.Sprintf(" · daemon merged %d establishes into %d flights (%d repartition passes)", de, df, dr)
	}
	fmt.Fprintf(stderr, "rtload: %d ops in %v (%.0f ops/s) · establish %d ok / %d rejected · release %d ok / %d skipped · %d protocol errors%s\n",
		ops, res.Wall.Round(time.Millisecond), res.OpsPerSec(),
		estAll.Accepted, estAll.Rejected, relAll.Accepted, relAll.Skipped, protoErrs, coalesced)

	// Benchmark names carry the workload and the transport so several
	// runs can live side by side in one merged BENCH document.
	scen := strings.TrimSuffix(filepath.Base(*scenFile), filepath.Ext(*scenFile))
	suffix := "/scen=" + scen + "/proto=" + *proto
	rep := &benchfmt.Report{Pkg: "repro/cmd/rtload", Benchmarks: []benchfmt.Result{
		loadgen.BenchResult("BenchmarkRTLoad/establish"+suffix, estAll),
		loadgen.BenchResult("BenchmarkRTLoad/release"+suffix, relAll),
		{
			Name: "BenchmarkRTLoad/total" + suffix, Runs: int64(ops),
			Metrics: map[string]float64{
				"ops/s":           res.OpsPerSec(),
				"wall-ns":         float64(res.Wall.Nanoseconds()),
				"clients":         float64(*clients),
				"protocol-errors": float64(protoErrs),
			},
		},
	}}
	if statsErr == nil {
		m := rep.Benchmarks[2].Metrics
		m["flights"] = float64(statsAfter.Server.Flights - statsBefore.Server.Flights)
		m["repartitions"] = float64(statsAfter.Admission.Repartitions - statsBefore.Admission.Repartitions)
	}
	if promErr == nil {
		if promAfter, err := cl.MetricsProm(ctx); err == nil {
			m := rep.Benchmarks[2].Metrics
			delta := func(series string) float64 { return promAfter[series] - promBefore[series] }
			linksChecked := delta("rtether_links_checked_total")
			cacheHits := delta("rtether_verify_cache_hits_total")
			m["srv-links-checked"] = linksChecked
			m["srv-verify-cache-hits"] = cacheHits
			if linksChecked > 0 {
				m["srv-cache-hit-rate"] = cacheHits / linksChecked
			}
			m["srv-flights"] = delta("rtether_flights_total")
			if f := delta("rtether_flights_total"); f > 0 {
				m["srv-coalesce-merges"] = delta("rtether_establishes_total") / f
			}
			m["srv-sweep-seconds"] = delta("rtether_sweep_seconds_total")
		}
	}

	if *appendTo && *out != "-" {
		if prev, err := benchfmt.ParseFile(*out); err == nil {
			rep = benchfmt.Merge(prev, rep)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(stderr, "rtload: -append: %v\n", err)
			return 1
		}
	}
	w := io.Writer(stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
	}
	if protoErrs > 0 {
		fmt.Fprintf(stderr, "rtload: FAILED: %d protocol errors\n", protoErrs)
		return 1
	}
	return 0
}
