// Command rtload is the load harness for rtetherd: it replays a
// scenario document's establish/release workload — including the
// synthesized churn-generator streams (docs/scenario-format.md) —
// against a running daemon from many concurrent client goroutines, at
// full speed, and emits latency/throughput percentiles as a BENCH JSON
// artifact (internal/benchfmt, the same format `rtexp -parsebench`
// produces, so CI merges both into one document).
//
//	rtload -addr 127.0.0.1:8316 -scenario fabric.json -clients 16 -out BENCH_rtload.json
//	rtload -proto binary -binaddr 127.0.0.1:8317 -scenario fabric.json -append -out BENCH_rtload.json
//
// -proto selects the transport (json over HTTP, or the daemon's binary
// listener via -binaddr); benchmark names carry a proto=… suffix and
// -append merges a run into an existing BENCH file, so one artifact can
// hold both transports' percentiles side by side.
//
// Workload items are sharded by channel name, so each channel's
// establish→release order is preserved while shards proceed
// independently — which is exactly the concurrent-client pattern the
// daemon's coalescing front-end merges. Admission rejections are
// expected outcomes (saturating the network is usually the point);
// transport failures and unclassified server errors are protocol
// errors, and any protocol error makes rtload exit non-zero — CI's
// smoke job asserts a clean run that way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/rtether"
	"repro/rtether/client"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// opStats collects one worker's measurements for one operation kind.
// Latencies go into the same reservoir-sampling Delay primitive the
// simulator's measurements use (internal/stats), observed in
// nanoseconds.
type opStats struct {
	lat      *stats.Delay
	accepted int
	rejected int
	skipped  int
	protoErr int
}

func newOpStats() *opStats { return &opStats{lat: stats.NewDelay(0)} }

// observe records one operation's wall latency.
func (s *opStats) observe(d time.Duration) { s.lat.Observe(d.Nanoseconds()) }

// merge folds another worker's stats in.
func (s *opStats) merge(o *opStats) {
	s.lat.Merge(o.lat)
	s.accepted += o.accepted
	s.rejected += o.rejected
	s.skipped += o.skipped
	s.protoErr += o.protoErr
}

// run drives the whole load run and returns the process exit code.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8316", "rtetherd address (host:port or http:// URL)")
		binaddr  = fs.String("binaddr", "", "daemon binary-protocol address (required with -proto binary)")
		proto    = fs.String("proto", "json", "transport for the latency-critical calls: json or binary")
		scenFile = fs.String("scenario", "", "scenario document providing the workload (required)")
		clients  = fs.Int("clients", 8, "concurrent client goroutines")
		maxOps   = fs.Int("maxops", 0, "cap on workload items (0 = whole workload)")
		out      = fs.String("out", "-", "BENCH JSON output file ('-' = stdout)")
		appendTo = fs.Bool("append", false, "merge this run into an existing -out file instead of overwriting it")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile of the load run to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile (post-run) to this file")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scenFile == "" {
		fmt.Fprintln(stderr, "rtload: -scenario is required")
		return 2
	}
	if *clients < 1 {
		*clients = 1
	}
	f, err := os.Open(*scenFile)
	if err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	sc, err := scenario.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	items, skippedKinds, err := sc.Workload()
	if err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	if *maxOps > 0 && len(items) > *maxOps {
		items = items[:*maxOps]
	}
	if len(items) == 0 {
		fmt.Fprintln(stderr, "rtload: scenario has no establish/release workload")
		return 1
	}
	if skippedKinds > 0 {
		fmt.Fprintf(stderr, "rtload: note: %d timeline events have no wire equivalent (reconfigure/setBackground) and were skipped\n", skippedKinds)
	}

	var copts []client.Option
	switch *proto {
	case "json":
	case "binary":
		if *binaddr == "" {
			fmt.Fprintln(stderr, "rtload: -proto binary requires -binaddr")
			return 2
		}
		copts = append(copts, client.WithTransport(client.TransportBinary), client.WithBinaryAddr(*binaddr))
	default:
		fmt.Fprintf(stderr, "rtload: unknown -proto %q (want json or binary)\n", *proto)
		return 2
	}
	cl := client.New(*addr, copts...)
	defer cl.CloseIdleConnections()
	if err := cl.Healthz(ctx); err != nil {
		fmt.Fprintf(stderr, "rtload: daemon not reachable: %v\n", err)
		return 1
	}
	statsBefore, err := cl.Stats(ctx)
	if err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}

	// Shard by channel name so each channel's establish→release order is
	// preserved within one worker; unnamed items spread round-robin.
	shards := make([][]scenario.WorkItem, *clients)
	for i, it := range items {
		w := i % *clients
		if it.Name != "" {
			h := fnv.New32a()
			_, _ = io.WriteString(h, it.Name)
			w = int(h.Sum32() % uint32(*clients))
		}
		shards[w] = append(shards[w], it)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	est := make([]*opStats, *clients)
	rel := make([]*opStats, *clients)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *clients; w++ {
		est[w], rel[w] = newOpStats(), newOpStats()
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			runShard(ctx, cl, shards[w], est[w], rel[w])
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)

	estAll, relAll := newOpStats(), newOpStats()
	for w := 0; w < *clients; w++ {
		estAll.merge(est[w])
		relAll.merge(rel[w])
	}
	protoErrs := estAll.protoErr + relAll.protoErr
	ops := int(estAll.lat.Count() + relAll.lat.Count())

	statsAfter, statsErr := cl.Stats(ctx)
	coalesced := ""
	if statsErr == nil {
		de := statsAfter.Server.Establishes - statsBefore.Server.Establishes
		df := statsAfter.Server.Flights - statsBefore.Server.Flights
		dr := statsAfter.Admission.Repartitions - statsBefore.Admission.Repartitions
		coalesced = fmt.Sprintf(" · daemon merged %d establishes into %d flights (%d repartition passes)", de, df, dr)
	}
	fmt.Fprintf(stderr, "rtload: %d ops in %v (%.0f ops/s) · establish %d ok / %d rejected · release %d ok / %d skipped · %d protocol errors%s\n",
		ops, wall.Round(time.Millisecond), float64(ops)/wall.Seconds(),
		estAll.accepted, estAll.rejected, relAll.accepted, relAll.skipped, protoErrs, coalesced)

	// Benchmark names carry the workload and the transport so several
	// runs can live side by side in one merged BENCH document.
	scen := strings.TrimSuffix(filepath.Base(*scenFile), filepath.Ext(*scenFile))
	suffix := "/scen=" + scen + "/proto=" + *proto
	rep := &benchfmt.Report{Pkg: "repro/cmd/rtload", Benchmarks: []benchfmt.Result{
		opResult("BenchmarkRTLoad/establish"+suffix, estAll),
		opResult("BenchmarkRTLoad/release"+suffix, relAll),
		{
			Name: "BenchmarkRTLoad/total" + suffix, Runs: int64(ops),
			Metrics: map[string]float64{
				"ops/s":           float64(ops) / wall.Seconds(),
				"wall-ns":         float64(wall.Nanoseconds()),
				"clients":         float64(*clients),
				"protocol-errors": float64(protoErrs),
			},
		},
	}}
	if statsErr == nil {
		m := rep.Benchmarks[2].Metrics
		m["flights"] = float64(statsAfter.Server.Flights - statsBefore.Server.Flights)
		m["repartitions"] = float64(statsAfter.Admission.Repartitions - statsBefore.Admission.Repartitions)
	}

	if *appendTo && *out != "-" {
		if prev, err := benchfmt.ParseFile(*out); err == nil {
			rep = benchfmt.Merge(prev, rep)
		} else if !errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(stderr, "rtload: -append: %v\n", err)
			return 1
		}
	}
	w := io.Writer(stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintf(stderr, "rtload: %v\n", err)
		return 1
	}
	if *memProf != "" {
		f, err := os.Create(*memProf)
		if err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(stderr, "rtload: %v\n", err)
			return 1
		}
	}
	if protoErrs > 0 {
		fmt.Fprintf(stderr, "rtload: FAILED: %d protocol errors\n", protoErrs)
		return 1
	}
	return 0
}

// runShard replays one worker's items in order, tracking the channel
// IDs its establishes were assigned so later releases find them.
func runShard(ctx context.Context, cl *client.Client, items []scenario.WorkItem, est, rel *opStats) {
	ids := make(map[string]rtether.ChannelID)
	for _, it := range items {
		if ctx.Err() != nil {
			return
		}
		if it.Release {
			id, ok := ids[it.Name]
			if !ok {
				rel.skipped++ // its establish was rejected
				continue
			}
			delete(ids, it.Name)
			t0 := time.Now()
			err := cl.Release(ctx, id)
			rel.observe(time.Since(t0))
			if err != nil {
				rel.protoErr++
				continue
			}
			rel.accepted++
			continue
		}
		t0 := time.Now()
		var ch client.Channel
		var err error
		if len(it.Sinks) > 0 {
			ch, err = cl.EstablishMulticast(ctx, rtether.MulticastSpec{
				Src: it.Spec.Src, Sinks: it.Sinks, C: it.Spec.C, P: it.Spec.P, D: it.Spec.D,
			})
		} else {
			ch, err = cl.Establish(ctx, it.Spec)
		}
		est.observe(time.Since(t0))
		switch {
		case err == nil:
			est.accepted++
			if it.Name != "" {
				ids[it.Name] = ch.ID
			}
		case errors.Is(err, rtether.ErrInfeasible):
			est.rejected++ // an admission verdict, not a failure
		default:
			est.protoErr++
		}
	}
}

// opResult summarizes one operation kind as a benchmark entry.
func opResult(name string, s *opStats) benchfmt.Result {
	res := benchfmt.Result{Name: name, Runs: s.lat.Count(), Metrics: map[string]float64{
		"accepted": float64(s.accepted),
		"rejected": float64(s.rejected),
	}}
	if s.lat.Count() == 0 {
		res.Metrics["ns/op"] = 0
		return res
	}
	res.Metrics["ns/op"] = s.lat.Mean()
	res.Metrics["p50-ns"] = float64(s.lat.Percentile(50))
	res.Metrics["p90-ns"] = float64(s.lat.Percentile(90))
	res.Metrics["p99-ns"] = float64(s.lat.Percentile(99))
	res.Metrics["max-ns"] = float64(s.lat.Max())
	return res
}
