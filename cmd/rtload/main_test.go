package main

import (
	"context"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/scenario"
	"repro/internal/server"
)

// bootDaemon serves the scenario's topology in-process over both
// transports, returning the HTTP URL and the binary listener address.
func bootDaemon(t *testing.T, path string) (httpURL, binAddr string) {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	rtnet, err := sc.BuildNetwork(0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Network: rtnet})
	ts := httptest.NewServer(srv.Handler())
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.ServeBinary(ln) }()
	t.Cleanup(func() { ts.Close(); srv.Close(); _ = rtnet.Close() })
	return ts.URL, ln.Addr().String()
}

// TestLoadRunEmitsBenchJSON drives a short burst over each transport
// against an in-process daemon, -appending the second run into the
// first artifact, and checks the result: zero protocol errors on both,
// parseable BENCH JSON holding each transport's entries side by side
// under their scen=…/proto=… names.
func TestLoadRunEmitsBenchJSON(t *testing.T) {
	url, binAddr := bootDaemon(t, "testdata/fabric_churn.json")
	out := filepath.Join(t.TempDir(), "BENCH_rtload.json")
	for _, proto := range []string{"json", "binary"} {
		var stdout, stderr strings.Builder
		code := run(context.Background(), []string{
			"-addr", url,
			"-proto", proto,
			"-binaddr", binAddr,
			"-scenario", "testdata/fabric_churn.json",
			"-clients", "4",
			"-maxops", "400",
			"-append",
			"-out", out,
		}, &stdout, &stderr)
		if code != 0 {
			t.Fatalf("proto=%s: exit %d\nstderr: %s", proto, code, stderr.String())
		}
		if !strings.Contains(stderr.String(), "0 protocol errors") {
			t.Errorf("proto=%s: summary missing: %s", proto, stderr.String())
		}
	}

	rep, err := benchfmt.ParseFile(out)
	if err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	names := map[string]benchfmt.Result{}
	for _, b := range rep.Benchmarks {
		names[b.Name] = b
	}
	for _, proto := range []string{"json", "binary"} {
		est, ok := names["BenchmarkRTLoad/establish/scen=fabric_churn/proto="+proto]
		if !ok || est.Runs == 0 || est.Metrics["p99-ns"] <= 0 {
			t.Errorf("proto=%s establish entry wrong: %+v", proto, est)
		}
		total, ok := names["BenchmarkRTLoad/total/scen=fabric_churn/proto="+proto]
		if !ok || total.Metrics["protocol-errors"] != 0 || total.Metrics["ops/s"] <= 0 {
			t.Errorf("proto=%s total entry wrong: %+v", proto, total)
		}
	}

	// The artifact merges with a bench-text report through the shared
	// machinery — the CI combination path.
	other := &benchfmt.Report{Benchmarks: []benchfmt.Result{{Name: "BenchmarkX", Runs: 1, Metrics: map[string]float64{"ns/op": 1}}}}
	merged := benchfmt.Merge(other, rep)
	if len(merged.Benchmarks) != 1+len(rep.Benchmarks) {
		t.Errorf("merge lost entries: %d", len(merged.Benchmarks))
	}
}

// TestLoadRunBadDaemon pins the unreachable-daemon failure mode.
func TestLoadRunBadDaemon(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run(context.Background(), []string{
		"-addr", "127.0.0.1:1", // nothing listens there
		"-scenario", "testdata/fabric_churn.json",
	}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "not reachable") {
		t.Errorf("exit %d, stderr %s", code, stderr.String())
	}
}
