package main

import (
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/scenario"
	"repro/internal/server"
)

// bootDaemon serves the scenario's topology in-process.
func bootDaemon(t *testing.T, path string) string {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := scenario.Load(f)
	if err != nil {
		t.Fatal(err)
	}
	net, err := sc.BuildNetwork(0)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(server.Config{Network: net})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close(); _ = net.Close() })
	return ts.URL
}

// TestLoadRunEmitsBenchJSON drives a short burst against an in-process
// daemon and checks the artifact: zero protocol errors, parseable BENCH
// JSON with the expected benchmark entries.
func TestLoadRunEmitsBenchJSON(t *testing.T) {
	url := bootDaemon(t, "testdata/fabric_churn.json")
	out := filepath.Join(t.TempDir(), "BENCH_rtload.json")
	var stdout, stderr strings.Builder
	code := run(context.Background(), []string{
		"-addr", url,
		"-scenario", "testdata/fabric_churn.json",
		"-clients", "4",
		"-maxops", "400",
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "0 protocol errors") {
		t.Errorf("summary missing: %s", stderr.String())
	}

	rep, err := benchfmt.ParseFile(out)
	if err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	names := map[string]benchfmt.Result{}
	for _, b := range rep.Benchmarks {
		names[b.Name] = b
	}
	est, ok := names["BenchmarkRTLoad/establish"]
	if !ok || est.Runs == 0 || est.Metrics["p99-ns"] <= 0 {
		t.Errorf("establish entry wrong: %+v", est)
	}
	total, ok := names["BenchmarkRTLoad/total"]
	if !ok || total.Metrics["protocol-errors"] != 0 || total.Metrics["ops/s"] <= 0 {
		t.Errorf("total entry wrong: %+v", total)
	}

	// The artifact merges with a bench-text report through the shared
	// machinery — the CI combination path.
	other := &benchfmt.Report{Benchmarks: []benchfmt.Result{{Name: "BenchmarkX", Runs: 1, Metrics: map[string]float64{"ns/op": 1}}}}
	merged := benchfmt.Merge(other, rep)
	if len(merged.Benchmarks) != 1+len(rep.Benchmarks) {
		t.Errorf("merge lost entries: %d", len(merged.Benchmarks))
	}
}

// TestLoadRunBadDaemon pins the unreachable-daemon failure mode.
func TestLoadRunBadDaemon(t *testing.T) {
	var stdout, stderr strings.Builder
	code := run(context.Background(), []string{
		"-addr", "127.0.0.1:1", // nothing listens there
		"-scenario", "testdata/fabric_churn.json",
	}, &stdout, &stderr)
	if code != 1 || !strings.Contains(stderr.String(), "not reachable") {
		t.Errorf("exit %d, stderr %s", code, stderr.String())
	}
}
