// Command rtsim runs one configurable simulation of the switched-Ethernet
// real-time network and prints a measurement summary: acceptance,
// per-channel worst-case delays against their guarantees, deadline
// misses, and best-effort throughput.
//
// With -scenario the workload comes from a declarative JSON file
// (internal/scenario, documented in docs/scenario-format.md) instead of
// the flags: static channels, a multi-switch topology, an event timeline
// (establish/release/reconfigure/setBackground at given slots) and churn
// generators all play back deterministically, per-event admission
// outcomes appear in the report, and -snapshot writes the final channel
// table as JSON (star scenarios — multi-switch networks do not support
// snapshots yet).
//
//	rtsim -masters 10 -slaves 50 -requests 200 -dps adps -slots 5000
//	rtsim -dps sdps -bg-rate 0.2 -shaping=false -trace 20
//	rtsim -scenario plant.json -events 0
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"repro/internal/scenario"
	"repro/internal/stats"
	"repro/internal/traffic"
	"repro/rtether"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		masters  = fs.Int("masters", 10, "number of master nodes")
		slaves   = fs.Int("slaves", 50, "number of slave nodes")
		requests = fs.Int("requests", 200, "channel requests (round-robin master→slave)")
		dpsName  = fs.String("dps", "adps", "deadline partitioning scheme: sdps | adps")
		c        = fs.Int64("c", 3, "channel capacity C (frames/period)")
		p        = fs.Int64("p", 100, "channel period P (slots)")
		d        = fs.Int64("d", 40, "channel deadline d (slots)")
		slots    = fs.Int64("slots", 5000, "measurement horizon after load (slots)")
		shaping  = fs.Bool("shaping", true, "enable the switch release-guard shaper")
		bgRate   = fs.Float64("bg-rate", 0, "background non-RT frames/slot per master")
		offsets  = fs.Int64("max-offset", 0, "max random release offset (0 = synchronous)")
		prop     = fs.Int64("propagation", 0, "per-hop propagation delay (slots)")
		seed     = fs.Int64("seed", 1, "random seed for offsets/background")
		linkMbps = fs.Int64("mbps", 100, "link rate for real-time conversion of results")
		traceN   = fs.Int("trace", 0, "print the last N trace events (0 = off)")
		scenFile = fs.String("scenario", "", "run a JSON scenario file instead of the flag-driven workload")
		snapPath = fs.String("snapshot", "", "with -scenario: write the final channel snapshot as JSON to this file ('-' = stdout); star scenarios only")
		eventCap = fs.Int("events", 25, "with -scenario: print at most N per-event outcome lines (0 = all)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *scenFile != "" {
		return runScenario(*scenFile, *snapPath, *eventCap, stdout, stderr)
	}

	var dps rtether.DPS
	switch *dpsName {
	case "sdps":
		dps = rtether.SDPS()
	case "adps":
		dps = rtether.ADPS()
	default:
		fmt.Fprintf(stderr, "rtsim: unknown -dps %q\n", *dpsName)
		return 2
	}

	layout := traffic.MasterSlaveLayout{Masters: *masters, Slaves: *slaves, SlaveBase: 100}
	params := rtether.ChannelSpec{C: *c, P: *p, D: *d}
	rng := rand.New(rand.NewSource(*seed))

	net := rtether.New(
		rtether.WithDPS(dps),
		rtether.WithShaping(*shaping),
		rtether.WithNonRTQueueCap(256),
		rtether.WithPropagation(*prop),
	)
	var tracer *rtether.RingTracer
	if *traceN > 0 {
		tracer = rtether.NewRingTracer(*traceN)
		net.SetTracer(tracer)
	}
	for _, id := range layout.Nodes() {
		net.MustAddNode(id)
	}

	var accepted []*rtether.Channel
	rejected := 0
	for _, spec := range layout.Requests(*requests, params) {
		ch, err := net.Establish(spec)
		if err != nil {
			rejected++
			continue
		}
		accepted = append(accepted, ch)
	}
	for _, ch := range accepted {
		var off int64
		if *offsets > 0 {
			off = rng.Int63n(*offsets + 1)
		}
		if err := ch.Start(off); err != nil {
			fmt.Fprintf(stderr, "rtsim: %v\n", err)
			return 1
		}
	}

	start := net.Now()
	bgSent := 0
	if *bgRate > 0 {
		for m := 0; m < layout.Masters; m++ {
			src, dst := layout.Master(m), layout.Slave(m)
			for _, at := range traffic.PoissonArrivals(rng, *bgRate, *slots) {
				src, dst := src, dst
				net.Schedule(start+at, func() { net.SendBestEffort(src, dst, []byte("bg")) })
				bgSent++
			}
		}
	}
	net.RunUntil(start + *slots)
	rep := net.Report()

	fmt.Fprintf(stdout, "rtsim: %d masters, %d slaves, %s, %d requested\n",
		*masters, *slaves, dps.Name(), *requests)
	fmt.Fprintf(stdout, "  slot = %d ns at %d Mbit/s\n", rtether.SlotNanos(*linkMbps), *linkMbps)
	fmt.Fprintf(stdout, "  accepted %d, rejected %d\n", len(accepted), rejected)

	tb := stats.NewTable("per-channel summary (worst 10 by max delay)",
		"channel", "delivered", "misses", "min", "mean", "p99", "max", "guarantee")
	type row struct {
		id    rtether.ChannelID
		m     *rtether.ChannelMetrics
		bound int64
	}
	var rows []row
	for _, ch := range accepted {
		m := rep.Channels[ch.ID()]
		if m == nil {
			continue
		}
		rows = append(rows, row{ch.ID(), m, ch.GuaranteedDelay()})
	}
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].m.Delays.Max() > rows[i].m.Delays.Max() {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	for i, r := range rows {
		if i >= 10 {
			break
		}
		tb.AddRowf(r.id, r.m.Delivered, r.m.Misses,
			r.m.Delays.Min(), r.m.Delays.Mean(), r.m.Delays.Percentile(99),
			r.m.Delays.Max(), r.bound)
	}
	fmt.Fprintln(stdout, tb)

	_, worst := rep.WorstDelay()
	fmt.Fprintf(stdout, "  RT: delivered %d frames, %d deadline misses, worst delay %d slots (%.1f µs)\n",
		rep.TotalDelivered(), rep.TotalMisses(), worst,
		float64(worst*rtether.SlotNanos(*linkMbps))/1000)
	if bgSent > 0 || rep.NonRTDelivered > 0 {
		fmt.Fprintf(stdout, "  non-RT: sent %d, delivered %d, dropped %d, mean delay %.1f slots\n",
			bgSent, rep.NonRTDelivered, rep.NonRTDrops, rep.NonRTDelay.Mean())
	}
	if tracer != nil {
		fmt.Fprintf(stdout, "  trace (last %d of %d events):\n", len(tracer.Events()), tracer.Total())
		for _, e := range tracer.Events() {
			fmt.Fprintf(stdout, "    %v\n", e)
		}
	}
	if rep.TotalMisses() > 0 {
		fmt.Fprintln(stdout, "  VERDICT: GUARANTEE VIOLATED")
		return 1
	}
	fmt.Fprintln(stdout, "  VERDICT: all guarantees held")
	return 0
}

// runScenario executes a declarative JSON scenario file: static load,
// event-timeline playback with per-event admission outcomes, measurement
// summary, and optionally a final channel snapshot.
func runScenario(path, snapPath string, eventCap int, stdout, stderr io.Writer) int {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintf(stderr, "rtsim: %v\n", err)
		return 1
	}
	defer f.Close()
	scen, err := scenario.Load(f)
	if err != nil {
		fmt.Fprintf(stderr, "rtsim: %v\n", err)
		return 1
	}
	// Snapshots are a star feature; fail before running the whole
	// simulation only to disappoint at the end.
	if snapPath != "" && scen.Fabric() {
		fmt.Fprintf(stderr, "rtsim: -snapshot needs a star scenario (snapshots are not supported on multi-switch networks yet)\n")
		return 2
	}
	res, err := scen.Run()
	if err != nil {
		fmt.Fprintf(stderr, "rtsim: %v\n", err)
		return 1
	}
	rep := res.Report
	_, worst := rep.WorstDelay()
	fmt.Fprintf(stdout, "scenario %q: %d channels accepted, %d rejected (optional)\n",
		scen.Name, len(res.Accepted), res.Rejected)
	if t := scen.Topology; t != nil {
		fmt.Fprintf(stdout, "  topology: %d switches, %d trunks, %d nodes\n",
			len(t.Switches), len(t.Trunks), len(t.Attachments))
	}
	printEventOutcomes(stdout, res, eventCap)
	fmt.Fprintf(stdout, "  RT: delivered %d frames, %d deadline misses, worst delay %d slots\n",
		rep.TotalDelivered(), rep.TotalMisses(), worst)
	if res.BgSent > 0 {
		fmt.Fprintf(stdout, "  non-RT: sent %d, delivered %d, dropped %d, mean delay %.1f slots\n",
			res.BgSent, rep.NonRTDelivered, rep.NonRTDrops, rep.NonRTDelay.Mean())
	}
	if snapPath != "" {
		if err := writeSnapshot(res, snapPath, stdout); err != nil {
			fmt.Fprintf(stderr, "rtsim: snapshot: %v\n", err)
			return 1
		}
	}
	if rep.TotalMisses() > 0 {
		fmt.Fprintln(stdout, "  VERDICT: GUARANTEE VIOLATED")
		return 1
	}
	fmt.Fprintln(stdout, "  VERDICT: all guarantees held")
	return 0
}

// printEventOutcomes lists the timeline playback results, capped at
// eventCap lines (0 = unlimited) with a deterministic tail summary.
func printEventOutcomes(w io.Writer, res *scenario.Result, eventCap int) {
	if len(res.Events) == 0 {
		return
	}
	accepted, rejected, skipped := res.EventCounts()
	fmt.Fprintf(w, "  events: %d played — %d applied, %d rejected (tolerated), %d skipped\n",
		len(res.Events), accepted, rejected, skipped)
	for i, ev := range res.Events {
		if eventCap > 0 && i >= eventCap {
			fmt.Fprintf(w, "    … %d more events (rerun with -events 0 for all)\n", len(res.Events)-i)
			break
		}
		fmt.Fprintf(w, "    %s\n", ev)
	}
}

// writeSnapshot serializes the run's final channel table ('-' = stdout).
func writeSnapshot(res *scenario.Result, path string, stdout io.Writer) error {
	if path == "-" {
		return res.Network.WriteSnapshot(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.Network.WriteSnapshot(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
