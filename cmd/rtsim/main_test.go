package main

import (
	"strings"
	"testing"
)

func TestDefaultRunHoldsGuarantees(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-masters", "3", "-slaves", "9", "-requests", "30", "-slots", "1500"},
		&out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errOut.String(), out.String())
	}
	s := out.String()
	if !strings.Contains(s, "VERDICT: all guarantees held") {
		t.Errorf("verdict missing:\n%s", s)
	}
	if !strings.Contains(s, "0 deadline misses") {
		t.Errorf("miss line missing:\n%s", s)
	}
	if !strings.Contains(s, "per-channel summary") {
		t.Errorf("table missing:\n%s", s)
	}
}

func TestBackgroundTrafficRun(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-masters", "2", "-slaves", "4", "-requests", "8",
		"-slots", "800", "-bg-rate", "0.1"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "non-RT: sent") {
		t.Errorf("non-RT summary missing:\n%s", out.String())
	}
}

func TestTraceFlag(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-masters", "1", "-slaves", "2", "-requests", "2",
		"-slots", "300", "-trace", "5"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "trace (last 5 of") {
		t.Errorf("trace output missing:\n%s", out.String())
	}
}

func TestUnknownDPSFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dps", "wat"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestRandomOffsetsAndSDPS(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-dps", "sdps", "-masters", "2", "-slaves", "6",
		"-requests", "20", "-slots", "1000", "-max-offset", "50", "-seed", "7"},
		&out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "SDPS") {
		t.Error("scheme name missing")
	}
}

func TestScenarioFile(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-scenario", "testdata/cell.json"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	if !strings.Contains(s, `scenario "assembly cell"`) ||
		!strings.Contains(s, "4 channels accepted") ||
		!strings.Contains(s, "VERDICT: all guarantees held") {
		t.Errorf("scenario output:\n%s", s)
	}
}

func TestScenarioFileMissing(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-scenario", "testdata/nope.json"}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
}

func TestDynamicScenario(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-scenario", "testdata/dynamic.json", "-events", "0"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s\n%s", code, errOut.String(), out.String())
	}
	s := out.String()
	for _, want := range []string{
		"topology: 3 switches, 2 trunks, 6 nodes",
		"events:",
		"establish     video            ACCEPT",
		"establishAll  telemetry-a,telemetry-b ACCEPT",
		"reconfigure   ctrl             ACCEPT",
		"release       video            OK",
		"establish     flows#0",
		"VERDICT: all guarantees held",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestDynamicScenarioDeterministic is the acceptance bar for the
// scenario subsystem: the same document (same seed) must produce a
// byte-identical report, churn stream included.
func TestDynamicScenarioDeterministic(t *testing.T) {
	render := func() string {
		var out, errOut strings.Builder
		if code := run([]string{"-scenario", "testdata/dynamic.json", "-events", "0"}, &out, &errOut); code != 0 {
			t.Fatalf("exit %d: %s", code, errOut.String())
		}
		return out.String()
	}
	if a, b := render(), render(); a != b {
		t.Errorf("scenario reports diverged:\n--- first\n%s\n--- second\n%s", a, b)
	}
}

func TestScenarioSnapshotFlag(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-scenario", "testdata/cell.json", "-snapshot", "-"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), `"up":`) {
		t.Errorf("snapshot JSON missing from output:\n%s", out.String())
	}
}

func TestScenarioSnapshotRejectedOnFabric(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-scenario", "testdata/dynamic.json", "-snapshot", "-"}, &out, &errOut)
	if code != 2 {
		t.Fatalf("exit %d, want 2 (up-front rejection)", code)
	}
	if !strings.Contains(errOut.String(), "star scenario") {
		t.Errorf("missing star-only diagnostic: %s", errOut.String())
	}
	// The simulation must not have run.
	if strings.Contains(out.String(), "VERDICT") {
		t.Errorf("simulation ran despite the rejected flag combination:\n%s", out.String())
	}
}

func TestScenarioEventCap(t *testing.T) {
	var out, errOut strings.Builder
	code := run([]string{"-scenario", "testdata/dynamic.json", "-events", "3"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "more events") {
		t.Errorf("event cap tail missing:\n%s", out.String())
	}
}
