// Command rtetherd is the admission-control daemon: it hosts one
// rtether.Network — topology, partitioning scheme and simulator options
// loaded from a scenario document's layout sections (docs/scenario-format.md;
// the channel/event/churn sections are ignored, clients drive the
// admission plane over the wire instead) — and serves establishment,
// release, reconfiguration, stats, per-channel metrics and the
// streaming /v1/watch event feed over HTTP/JSON (docs/server.md).
//
// Concurrent establish requests are coalesced into merged per-spec
// admission passes, so N clients cost approximately one repartition and
// one verification sweep instead of N (compare the repartitions counter
// in GET /v1/stats).
//
//	rtetherd -scenario fabric.json -addr 127.0.0.1:8316
//	rtetherd -scenario fabric.json -coalesce 200us -workers 8
//	rtetherd -scenario fabric.json -binaddr 127.0.0.1:8317
//	rtetherd -scenario fabric.json -metrics-addr 127.0.0.1:9316 -heartbeat 5s
//
// -binaddr opens a second listener speaking the length-prefixed binary
// protocol (docs/server.md#binary-protocol) for the latency-critical
// calls; rtether/client selects it with WithTransport(TransportBinary).
// -pprof serves net/http/pprof profiles on a separate address.
//
// Observability (docs/observability.md): GET /metrics on the main
// listener serves the Prometheus text exposition and GET /v1/spans the
// admission flight recorder. -metrics-addr additionally serves the same
// /metrics on a dedicated listener, so a scraper needs no access to the
// admission API; -heartbeat publishes a periodic liveness event on the
// /v1/watch feed.
//
// SIGINT/SIGTERM shut the daemon down gracefully: in-flight requests
// drain, queued establishes fail with the "closed" error, and the
// hosted network is closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/scenario"
	"repro/internal/server"
	"repro/rtether"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	os.Exit(run(ctx, os.Args[1:], os.Stdout, os.Stderr))
}

// run parses flags, boots the daemon and serves until ctx is canceled.
func run(ctx context.Context, args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtetherd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		addr     = fs.String("addr", "127.0.0.1:8316", "listen address (host:port; port 0 picks a free port)")
		binaddr  = fs.String("binaddr", "", "binary-protocol listen address (empty = HTTP/JSON only)")
		pprof    = fs.String("pprof", "", "serve net/http/pprof on this address (empty = disabled)")
		scenFile = fs.String("scenario", "", "scenario document providing the topology and network options (required)")
		workers  = fs.Int("workers", 0, "admission verification workers (0 = GOMAXPROCS, 1 = sequential)")
		fullRe   = fs.Bool("fullrecheck", false, "re-verify every loaded link on each decision (bypasses the sweep verdict cache; decisions are identical, just slower)")
		coalesce = fs.Duration("coalesce", 0, "extra window to merge concurrent establishes (0 = merge in-flight only)")
		maxBatch = fs.Int("maxbatch", 1024, "max establish requests merged into one admission pass")
		quiet    = fs.Bool("quiet", false, "suppress request logging")
		metrics  = fs.String("metrics-addr", "", "serve GET /metrics on a dedicated listener too (empty = main listener only; /metrics is always on -addr)")
		hbEvery  = fs.Duration("heartbeat", 0, "publish a heartbeat event on /v1/watch at this interval (0 = disabled)")
		spanCap  = fs.Int("spans", 0, "flight-recorder capacity served by GET /v1/spans (0 = default 256)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *scenFile == "" {
		fmt.Fprintln(stderr, "rtetherd: -scenario is required")
		return 2
	}
	f, err := os.Open(*scenFile)
	if err != nil {
		fmt.Fprintf(stderr, "rtetherd: %v\n", err)
		return 1
	}
	sc, err := scenario.Load(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(stderr, "rtetherd: %v\n", err)
		return 1
	}
	var extra []rtether.Option
	if *fullRe {
		extra = append(extra, rtether.WithFullRecheck())
	}
	network, err := sc.BuildNetwork(*workers, extra...)
	if err != nil {
		fmt.Fprintf(stderr, "rtetherd: %v\n", err)
		return 1
	}

	var logger *log.Logger
	if !*quiet {
		logger = log.New(stderr, "rtetherd: ", log.LstdFlags)
	}
	srv := server.New(server.Config{
		Network:           network,
		CoalesceWindow:    *coalesce,
		MaxBatch:          *maxBatch,
		HeartbeatInterval: *hbEvery,
		SpanRingSize:      *spanCap,
		Log:               logger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintf(stderr, "rtetherd: %v\n", err)
		return 1
	}
	kind := "star"
	if sc.Fabric() {
		kind = fmt.Sprintf("fabric (%d switches)", len(sc.Topology.Switches))
	}
	fmt.Fprintf(stdout, "rtetherd: serving %q (%s) on http://%s\n", sc.Name, kind, ln.Addr())

	var binDone chan struct{}
	if *binaddr != "" {
		binLn, err := net.Listen("tcp", *binaddr)
		if err != nil {
			ln.Close()
			fmt.Fprintf(stderr, "rtetherd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "rtetherd: binary protocol on %s\n", binLn.Addr())
		binDone = make(chan struct{})
		go func() {
			defer close(binDone)
			if err := srv.ServeBinary(binLn); err != nil {
				fmt.Fprintf(stderr, "rtetherd: binary listener: %v\n", err)
			}
		}()
	}
	if *metrics != "" {
		metricsLn, err := net.Listen("tcp", *metrics)
		if err != nil {
			ln.Close()
			fmt.Fprintf(stderr, "rtetherd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "rtetherd: metrics on http://%s/metrics\n", metricsLn.Addr())
		// The side listener serves only the exposition — a scrape target
		// with no reach into the admission API.
		mm := http.NewServeMux()
		mm.HandleFunc("GET /metrics", srv.MetricsHandler())
		go func() { _ = http.Serve(metricsLn, mm) }()
	}
	if *pprof != "" {
		pprofLn, err := net.Listen("tcp", *pprof)
		if err != nil {
			ln.Close()
			fmt.Fprintf(stderr, "rtetherd: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "rtetherd: pprof on http://%s/debug/pprof/\n", pprofLn.Addr())
		// http.DefaultServeMux carries the net/http/pprof handlers; the
		// daemon's own API stays on its dedicated mux.
		go func() { _ = http.Serve(pprofLn, nil) }()
	}

	httpSrv := &http.Server{Handler: srv.Handler()}
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()
	err = httpSrv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) {
		// Serve returns as soon as the listener closes; wait for
		// Shutdown's handler drain before tearing the service down, so
		// in-flight requests complete against a live coalescer/network.
		<-shutdownDone
	}
	srv.Close() // also tears down the binary listener and its connections
	if binDone != nil {
		<-binDone
	}
	_ = network.Close()
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(stderr, "rtetherd: %v\n", err)
		return 1
	}
	fmt.Fprintln(stdout, "rtetherd: shut down")
	return 0
}
