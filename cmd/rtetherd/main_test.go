package main

import (
	"context"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/rtether"
	"repro/rtether/client"
)

// syncBuf is a goroutine-safe writer the daemon logs into while the
// test polls it.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonSmoke boots the daemon on a free port with the shared
// fabric scenario, establishes and releases a channel through the typed
// client, and shuts it down gracefully.
func TestDaemonSmoke(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var stdout, stderr syncBuf
	exit := make(chan int, 1)
	go func() {
		exit <- run(ctx, []string{
			"-addr", "127.0.0.1:0",
			"-scenario", "../rtload/testdata/fabric_churn.json",
			"-quiet",
		}, &stdout, &stderr)
	}()

	addrRe := regexp.MustCompile(`http://([0-9.:]+)`)
	var addr string
	for deadline := time.Now().Add(10 * time.Second); time.Now().Before(deadline); time.Sleep(10 * time.Millisecond) {
		if m := addrRe.FindStringSubmatch(stdout.String()); m != nil {
			addr = m[1]
			break
		}
		select {
		case code := <-exit:
			t.Fatalf("daemon exited early with %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
		default:
		}
	}
	if addr == "" {
		t.Fatalf("daemon never reported its address\nstdout: %s\nstderr: %s", stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "fabric (4 switches)") {
		t.Errorf("banner does not describe the topology: %s", stdout.String())
	}

	cl := client.New(addr)
	defer cl.CloseIdleConnections()
	if err := cl.Healthz(ctx); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	ch, err := cl.Establish(ctx, rtether.ChannelSpec{Src: 1, Dst: 8, C: 1, P: 100, D: 50})
	if err != nil {
		t.Fatalf("establish: %v", err)
	}
	if len(ch.Budgets) != 5 { // node→sw0→sw1→sw2→sw3→node
		t.Errorf("budgets = %v, want 5 hops", ch.Budgets)
	}
	if err := cl.Release(ctx, ch.ID); err != nil {
		t.Fatalf("release: %v", err)
	}

	cancel()
	select {
	case code := <-exit:
		if code != 0 {
			t.Fatalf("daemon exited with %d\nstderr: %s", code, stderr.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatal("daemon did not shut down")
	}
	if !strings.Contains(stdout.String(), "shut down") {
		t.Errorf("no shutdown banner: %s", stdout.String())
	}
}

// TestDaemonBadFlags pins the usage errors.
func TestDaemonBadFlags(t *testing.T) {
	var out, errOut syncBuf
	if code := run(context.Background(), nil, &out, &errOut); code != 2 {
		t.Errorf("missing -scenario: exit %d, want 2", code)
	}
	if code := run(context.Background(), []string{"-scenario", "does-not-exist.json"}, &out, &errOut); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
}
