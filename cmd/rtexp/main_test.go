package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fig18.5", "dsweep", "multiswitch", "dpssearch"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig18.5"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Fig. 18.5") {
		t.Error("table title missing")
	}
	if strings.Contains(out.String(), "E8") {
		t.Error("unselected experiment ran")
	}
}

func TestRunCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig18.5", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "requested,accepted(SDPS),accepted(ADPS)") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "200,60,110") {
		t.Errorf("CSV data row missing:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestParseBenchJSON(t *testing.T) {
	const benchOut = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAdmissionScale/10k/star-batch-ADPS-4         	       1	  41000000 ns/op
BenchmarkAdmissionScaleVerifyWorkers/10k/star-batch-verify/workers=1 	       3	 146722567 ns/op
BenchmarkFig18_5-4 	       2	   7700000 ns/op	        110 accepted-ADPS@200	         93.0 accepted-SDPS@200
PASS
ok  	repro	2.313s
`
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(path, []byte(benchOut), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep struct {
		Goos       string `json:"goos"`
		CPU        string `json:"cpu"`
		Benchmarks []struct {
			Name    string             `json:"name"`
			Procs   int                `json:"procs"`
			Runs    int64              `json:"runs"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Goos != "linux" || rep.CPU == "" {
		t.Errorf("header not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3:\n%s", len(rep.Benchmarks), out.String())
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkAdmissionScale/10k/star-batch-ADPS" || b0.Procs != 4 || b0.Runs != 1 {
		t.Errorf("benchmark 0 parsed wrong: %+v", b0)
	}
	if b0.Metrics["ns/op"] != 41000000 {
		t.Errorf("ns/op = %v", b0.Metrics["ns/op"])
	}
	// The workers=1 sub-benchmark name must survive (no procs suffix).
	if rep.Benchmarks[1].Name != "BenchmarkAdmissionScaleVerifyWorkers/10k/star-batch-verify/workers=1" {
		t.Errorf("benchmark 1 name = %q", rep.Benchmarks[1].Name)
	}
	// Custom b.ReportMetric units are captured.
	if rep.Benchmarks[2].Metrics["accepted-ADPS@200"] != 110 {
		t.Errorf("custom metric lost: %+v", rep.Benchmarks[2].Metrics)
	}
}

// TestParseBenchMergesMultipleFiles feeds -parsebench one bench-text
// file plus one previously emitted JSON artifact (rtload's output
// format) and checks they merge into a single document, stably sorted
// by benchmark name then source file — so the same input set yields
// byte-identical JSON no matter how CI orders the arguments.
func TestParseBenchMergesMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(text, []byte("BenchmarkAlpha-4 \t 1 \t 100 ns/op\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonArtifact := filepath.Join(dir, "BENCH_rtload.json")
	artifact := `{"pkg":"repro/cmd/rtload","benchmarks":[{"name":"BenchmarkRTLoad/total","runs":42,"metrics":{"ops/s":9000}}]}`
	if err := os.WriteFile(jsonArtifact, []byte(artifact), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", text, jsonArtifact}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Runs    int64              `json:"runs"`
			Source  string             `json:"source"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("merged %d benchmarks, want 2:\n%s", len(rep.Benchmarks), out.String())
	}
	if rep.Benchmarks[0].Name != "BenchmarkAlpha" || rep.Benchmarks[1].Name != "BenchmarkRTLoad/total" {
		t.Errorf("merge order wrong: %+v", rep.Benchmarks)
	}
	if rep.Benchmarks[0].Source != text || rep.Benchmarks[1].Source != jsonArtifact {
		t.Errorf("source annotations wrong: %+v", rep.Benchmarks)
	}
	if rep.Benchmarks[1].Metrics["ops/s"] != 9000 {
		t.Errorf("JSON input metrics lost: %+v", rep.Benchmarks[1])
	}

	// Reversing the argument order must produce the identical document.
	var swapped strings.Builder
	if code := run([]string{"-parsebench", jsonArtifact, text}, &swapped, &errOut); code != 0 {
		t.Fatalf("swapped exit %d: %s", code, errOut.String())
	}
	if swapped.String() != out.String() {
		t.Errorf("merged JSON depends on argument order:\n--- a\n%s\n--- b\n%s", out.String(), swapped.String())
	}
}

// TestParseBenchSameNameAcrossFiles pins the tie-breaker: two files
// reporting the same benchmark name sort by source file.
func TestParseBenchSameNameAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	fileA := filepath.Join(dir, "a.txt")
	fileB := filepath.Join(dir, "b.txt")
	for _, p := range []string{fileB, fileA} {
		if err := os.WriteFile(p, []byte("BenchmarkShared-4 \t 1 \t 100 ns/op\nPASS\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", fileB, fileA}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep struct {
		Benchmarks []struct {
			Source string `json:"source"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 2 || rep.Benchmarks[0].Source != fileA || rep.Benchmarks[1].Source != fileB {
		t.Errorf("same-name entries not ordered by source: %+v", rep.Benchmarks)
	}
}

func TestParseBenchEmptyInputFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(path, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", path}, &out, &errOut); code == 0 {
		t.Fatal("empty bench output parsed successfully")
	}
}

// TestParseBenchBaselineGate pins the CI regression gate: a benchmark
// that slowed beyond -threshold fails the run with a REGRESSED delta
// line; within threshold it passes and still prints the deltas.
func TestParseBenchBaselineGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "prev.json")
	prev := `{"benchmarks":[{"name":"BenchmarkX","runs":1,"metrics":{"ns/op":100}},{"name":"BenchmarkY","runs":1,"metrics":{"ns/op":100}}]}`
	if err := os.WriteFile(baseline, []byte(prev), 0o644); err != nil {
		t.Fatal(err)
	}
	current := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(current, []byte("BenchmarkX-4 \t 1 \t 130 ns/op\nBenchmarkY-4 \t 1 \t 105 ns/op\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", current, "-baseline", baseline, "-threshold", "15"}, &out, &errOut); code == 0 {
		t.Fatalf("a +30%% slowdown passed the 15%% gate:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "REGRESSED") || !strings.Contains(errOut.String(), "BenchmarkX") {
		t.Errorf("missing REGRESSED delta line:\n%s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-parsebench", current, "-baseline", baseline, "-threshold", "50"}, &out, &errOut); code != 0 {
		t.Fatalf("within-threshold run failed: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "BenchmarkY") {
		t.Errorf("deltas not reported on a passing run:\n%s", errOut.String())
	}
	// The JSON artifact on stdout is unaffected by the gate.
	if !strings.Contains(out.String(), `"BenchmarkX"`) {
		t.Errorf("stdout JSON missing benchmarks:\n%s", out.String())
	}
}

// TestBaselineEdgeCases pins the gate's matching and threshold
// semantics case by case: what gets a delta line, what is skipped, and
// exactly where the pass/fail boundary sits.
func TestBaselineEdgeCases(t *testing.T) {
	cases := []struct {
		name      string
		baseline  string // baseline BENCH JSON
		current   string // current BENCH JSON (fed via -parsebench)
		threshold string
		wantCode  int
		wantLines []string // substrings that must appear on stderr
		skipLines []string // substrings that must NOT appear on stderr
	}{
		{
			name:      "benchmark only in baseline is skipped",
			baseline:  `{"benchmarks":[{"name":"BenchmarkGone","runs":1,"metrics":{"ns/op":100}}]}`,
			current:   `{"benchmarks":[{"name":"BenchmarkNew","runs":1,"metrics":{"ns/op":100}}]}`,
			threshold: "15",
			wantCode:  0,
			skipLines: []string{"BenchmarkGone", "REGRESSED"},
		},
		{
			name:      "benchmark only in current is skipped",
			baseline:  `{"benchmarks":[{"name":"BenchmarkA","runs":1,"metrics":{"ns/op":100}}]}`,
			current:   `{"benchmarks":[{"name":"BenchmarkA","runs":1,"metrics":{"ns/op":100}},{"name":"BenchmarkFresh","runs":1,"metrics":{"ns/op":9999}}]}`,
			threshold: "15",
			wantCode:  0,
			wantLines: []string{"BenchmarkA"},
			skipLines: []string{"BenchmarkFresh", "REGRESSED"},
		},
		{
			name: "exactly at threshold passes",
			// 100 -> 125 is +25.0% sharp; the gate is strict (> threshold).
			baseline:  `{"benchmarks":[{"name":"BenchmarkEdge","runs":1,"metrics":{"ns/op":100}}]}`,
			current:   `{"benchmarks":[{"name":"BenchmarkEdge","runs":1,"metrics":{"ns/op":125}}]}`,
			threshold: "25",
			wantCode:  0,
			wantLines: []string{"BenchmarkEdge", "+25.0%", "ok"},
			skipLines: []string{"REGRESSED"},
		},
		{
			name:      "one past threshold fails",
			baseline:  `{"benchmarks":[{"name":"BenchmarkEdge","runs":1,"metrics":{"ns/op":100}}]}`,
			current:   `{"benchmarks":[{"name":"BenchmarkEdge","runs":1,"metrics":{"ns/op":126}}]}`,
			threshold: "25",
			wantCode:  1,
			wantLines: []string{"BenchmarkEdge", "REGRESSED", "FAILED: 1 benchmark(s)"},
		},
		{
			name:      "zero ns/op baseline is skipped",
			baseline:  `{"benchmarks":[{"name":"BenchmarkZero","runs":1,"metrics":{"ns/op":0}}]}`,
			current:   `{"benchmarks":[{"name":"BenchmarkZero","runs":1,"metrics":{"ns/op":50}}]}`,
			threshold: "15",
			wantCode:  0,
			skipLines: []string{"BenchmarkZero", "REGRESSED"},
		},
		{
			name:      "zero ns/op current is skipped",
			baseline:  `{"benchmarks":[{"name":"BenchmarkZero","runs":1,"metrics":{"ns/op":50}}]}`,
			current:   `{"benchmarks":[{"name":"BenchmarkZero","runs":1,"metrics":{"ns/op":0}}]}`,
			threshold: "15",
			wantCode:  0,
			skipLines: []string{"BenchmarkZero", "REGRESSED"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			basePath := filepath.Join(dir, "prev.json")
			curPath := filepath.Join(dir, "cur.json")
			if err := os.WriteFile(basePath, []byte(tc.baseline), 0o644); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(curPath, []byte(tc.current), 0o644); err != nil {
				t.Fatal(err)
			}
			var out, errOut strings.Builder
			code := run([]string{"-parsebench", curPath, "-baseline", basePath, "-threshold", tc.threshold}, &out, &errOut)
			if code != tc.wantCode {
				t.Fatalf("exit %d, want %d; stderr:\n%s", code, tc.wantCode, errOut.String())
			}
			for _, want := range tc.wantLines {
				if !strings.Contains(errOut.String(), want) {
					t.Errorf("stderr missing %q:\n%s", want, errOut.String())
				}
			}
			for _, skip := range tc.skipLines {
				if strings.Contains(errOut.String(), skip) {
					t.Errorf("stderr unexpectedly contains %q:\n%s", skip, errOut.String())
				}
			}
		})
	}
}

// sweepFixture writes a small scenario plus a grid over it into a temp
// dir and returns the grid path.
func sweepFixture(t *testing.T, gridDoc string) string {
	t.Helper()
	dir := t.TempDir()
	scenario := `{
		"name": "cli star",
		"dps": "adps",
		"slots": 400,
		"seed": 4,
		"nodes": [1, 2, 3, 4, 5, 6],
		"churn": [{
			"name": "mix", "rate": 0.4, "holdMean": 60,
			"sources": [1, 2, 3], "destinations": [4, 5, 6],
			"c": 1, "p": 120, "d": 80, "maxConcurrent": 16
		}]
	}`
	if err := os.WriteFile(filepath.Join(dir, "star.json"), []byte(scenario), 0o644); err != nil {
		t.Fatal(err)
	}
	gridPath := filepath.Join(dir, "grid.json")
	if err := os.WriteFile(gridPath, []byte(gridDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	return gridPath
}

// TestSweepCLIDeterministic drives the whole -sweep pipeline twice and
// pins the platform contract at the CLI boundary: byte-identical BENCH
// JSON on stdout for the same grid and seed.
func TestSweepCLIDeterministic(t *testing.T) {
	gridPath := sweepFixture(t, `{
		"name": "cli",
		"scenario": "star.json",
		"seed": 11,
		"axes": {"scheme": ["sdps", "adps"]}
	}`)
	var a, b, errOut strings.Builder
	if code := run([]string{"-sweep", gridPath}, &a, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if code := run([]string{"-sweep", gridPath}, &b, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if a.String() != b.String() {
		t.Fatalf("same grid produced different documents:\n--- a\n%s\n--- b\n%s", a.String(), b.String())
	}
	var rep struct {
		Benchmarks []struct {
			Name string `json:"name"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(a.String()), &rep); err != nil {
		t.Fatalf("stdout is not BENCH JSON: %v\n%s", err, a.String())
	}
	if len(rep.Benchmarks) != 2 ||
		!strings.Contains(a.String(), "scheme=sdps") || !strings.Contains(a.String(), "scheme=adps") {
		t.Errorf("cells missing or misnamed: %+v", rep.Benchmarks)
	}
	// Progress narration goes to stderr, never into the artifact.
	if !strings.Contains(errOut.String(), "sweep: [") {
		t.Errorf("no per-cell progress on stderr:\n%s", errOut.String())
	}
}

// TestSweepCLIGate pins the trajectory gate on sweep output: a doctored
// baseline that makes one cell look slower than -threshold fails the
// run with a REGRESSED line naming the cell; a generous baseline
// passes. Timing is enabled so cells carry ns/op.
func TestSweepCLIGate(t *testing.T) {
	gridPath := sweepFixture(t, `{
		"name": "gate",
		"scenario": "star.json",
		"seed": 11,
		"timing": true,
		"axes": {"scheme": ["sdps", "adps"]}
	}`)
	dir := t.TempDir()
	outPath := filepath.Join(dir, "BENCH_sweep.json")
	var out, errOut strings.Builder
	if code := run([]string{"-sweep", gridPath, "-out", outPath}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	raw, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Runs    int64              `json:"runs"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("-out artifact is not BENCH JSON: %v", err)
	}
	if len(rep.Benchmarks) != 2 || rep.Benchmarks[0].Metrics["ns/op"] <= 0 {
		t.Fatalf("timing cells malformed: %+v", rep.Benchmarks)
	}

	// A baseline claiming each cell used to be 1000x faster: everything
	// regresses far beyond any threshold.
	doctor := func(scale float64) string {
		type bench struct {
			Name    string             `json:"name"`
			Runs    int64              `json:"runs"`
			Metrics map[string]float64 `json:"metrics"`
		}
		var doc struct {
			Benchmarks []bench `json:"benchmarks"`
		}
		for _, b := range rep.Benchmarks {
			doc.Benchmarks = append(doc.Benchmarks, bench{
				Name: b.Name, Runs: b.Runs,
				Metrics: map[string]float64{"ns/op": b.Metrics["ns/op"] * scale},
			})
		}
		buf, err := json.Marshal(doc)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, fmt.Sprintf("baseline_%g.json", scale))
		if err := os.WriteFile(p, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	errOut.Reset()
	out.Reset()
	if code := run([]string{"-sweep", gridPath, "-out", outPath, "-baseline", doctor(0.001)}, &out, &errOut); code != 1 {
		t.Fatalf("regressed sweep exited %d, want 1:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "REGRESSED") || !strings.Contains(errOut.String(), "scheme=sdps") {
		t.Errorf("missing REGRESSED cell line:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "FAILED") {
		t.Errorf("missing FAILED summary:\n%s", errOut.String())
	}

	errOut.Reset()
	out.Reset()
	if code := run([]string{"-sweep", gridPath, "-out", outPath, "-baseline", doctor(1000)}, &out, &errOut); code != 0 {
		t.Fatalf("fast run failed the gate:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "rtexp: delta") {
		t.Errorf("passing gate printed no delta lines:\n%s", errOut.String())
	}
}

// TestSweepCLIBadGrid: loader diagnostics surface through the CLI with
// a non-zero exit.
func TestSweepCLIBadGrid(t *testing.T) {
	gridPath := sweepFixture(t, `{"name": "bad", "scenario": "star.json", "axes": {"scheme": ["edf"]}}`)
	var out, errOut strings.Builder
	if code := run([]string{"-sweep", gridPath}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d, want 1", code)
	}
	if !strings.Contains(errOut.String(), `axis "scheme"`) {
		t.Errorf("axis diagnostic lost: %s", errOut.String())
	}
}

// TestSweepExclusiveWithParsebench: the two front-ends cannot combine.
func TestSweepExclusiveWithParsebench(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-sweep", "g.json", "-parsebench", "b.txt"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
