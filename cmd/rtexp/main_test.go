package main

import (
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fig18.5", "dsweep", "multiswitch", "dpssearch"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig18.5"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Fig. 18.5") {
		t.Error("table title missing")
	}
	if strings.Contains(out.String(), "E8") {
		t.Error("unselected experiment ran")
	}
}

func TestRunCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig18.5", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "requested,accepted(SDPS),accepted(ADPS)") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "200,60,110") {
		t.Errorf("CSV data row missing:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}
