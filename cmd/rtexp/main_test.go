package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errOut.String())
	}
	for _, want := range []string{"fig18.5", "dsweep", "multiswitch", "dpssearch"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("-list output missing %q", want)
		}
	}
}

func TestRunSingleExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig18.5"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "Fig. 18.5") {
		t.Error("table title missing")
	}
	if strings.Contains(out.String(), "E8") {
		t.Error("unselected experiment ran")
	}
}

func TestRunCSV(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "fig18.5", "-csv"}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "requested,accepted(SDPS),accepted(ADPS)") {
		t.Errorf("CSV header missing:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "200,60,110") {
		t.Errorf("CSV data row missing:\n%s", out.String())
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-exp", "nope"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if !strings.Contains(errOut.String(), "unknown experiment") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
}

func TestParseBenchJSON(t *testing.T) {
	const benchOut = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkAdmissionScale/10k/star-batch-ADPS-4         	       1	  41000000 ns/op
BenchmarkAdmissionScaleVerifyWorkers/10k/star-batch-verify/workers=1 	       3	 146722567 ns/op
BenchmarkFig18_5-4 	       2	   7700000 ns/op	        110 accepted-ADPS@200	         93.0 accepted-SDPS@200
PASS
ok  	repro	2.313s
`
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(path, []byte(benchOut), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep struct {
		Goos       string `json:"goos"`
		CPU        string `json:"cpu"`
		Benchmarks []struct {
			Name    string             `json:"name"`
			Procs   int                `json:"procs"`
			Runs    int64              `json:"runs"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if rep.Goos != "linux" || rep.CPU == "" {
		t.Errorf("header not parsed: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3:\n%s", len(rep.Benchmarks), out.String())
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkAdmissionScale/10k/star-batch-ADPS" || b0.Procs != 4 || b0.Runs != 1 {
		t.Errorf("benchmark 0 parsed wrong: %+v", b0)
	}
	if b0.Metrics["ns/op"] != 41000000 {
		t.Errorf("ns/op = %v", b0.Metrics["ns/op"])
	}
	// The workers=1 sub-benchmark name must survive (no procs suffix).
	if rep.Benchmarks[1].Name != "BenchmarkAdmissionScaleVerifyWorkers/10k/star-batch-verify/workers=1" {
		t.Errorf("benchmark 1 name = %q", rep.Benchmarks[1].Name)
	}
	// Custom b.ReportMetric units are captured.
	if rep.Benchmarks[2].Metrics["accepted-ADPS@200"] != 110 {
		t.Errorf("custom metric lost: %+v", rep.Benchmarks[2].Metrics)
	}
}

// TestParseBenchMergesMultipleFiles feeds -parsebench one bench-text
// file plus one previously emitted JSON artifact (rtload's output
// format) and checks they merge into a single document, stably sorted
// by benchmark name then source file — so the same input set yields
// byte-identical JSON no matter how CI orders the arguments.
func TestParseBenchMergesMultipleFiles(t *testing.T) {
	dir := t.TempDir()
	text := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(text, []byte("BenchmarkAlpha-4 \t 1 \t 100 ns/op\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	jsonArtifact := filepath.Join(dir, "BENCH_rtload.json")
	artifact := `{"pkg":"repro/cmd/rtload","benchmarks":[{"name":"BenchmarkRTLoad/total","runs":42,"metrics":{"ops/s":9000}}]}`
	if err := os.WriteFile(jsonArtifact, []byte(artifact), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", text, jsonArtifact}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep struct {
		Benchmarks []struct {
			Name    string             `json:"name"`
			Runs    int64              `json:"runs"`
			Source  string             `json:"source"`
			Metrics map[string]float64 `json:"metrics"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("merged %d benchmarks, want 2:\n%s", len(rep.Benchmarks), out.String())
	}
	if rep.Benchmarks[0].Name != "BenchmarkAlpha" || rep.Benchmarks[1].Name != "BenchmarkRTLoad/total" {
		t.Errorf("merge order wrong: %+v", rep.Benchmarks)
	}
	if rep.Benchmarks[0].Source != text || rep.Benchmarks[1].Source != jsonArtifact {
		t.Errorf("source annotations wrong: %+v", rep.Benchmarks)
	}
	if rep.Benchmarks[1].Metrics["ops/s"] != 9000 {
		t.Errorf("JSON input metrics lost: %+v", rep.Benchmarks[1])
	}

	// Reversing the argument order must produce the identical document.
	var swapped strings.Builder
	if code := run([]string{"-parsebench", jsonArtifact, text}, &swapped, &errOut); code != 0 {
		t.Fatalf("swapped exit %d: %s", code, errOut.String())
	}
	if swapped.String() != out.String() {
		t.Errorf("merged JSON depends on argument order:\n--- a\n%s\n--- b\n%s", out.String(), swapped.String())
	}
}

// TestParseBenchSameNameAcrossFiles pins the tie-breaker: two files
// reporting the same benchmark name sort by source file.
func TestParseBenchSameNameAcrossFiles(t *testing.T) {
	dir := t.TempDir()
	fileA := filepath.Join(dir, "a.txt")
	fileB := filepath.Join(dir, "b.txt")
	for _, p := range []string{fileB, fileA} {
		if err := os.WriteFile(p, []byte("BenchmarkShared-4 \t 1 \t 100 ns/op\nPASS\n"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", fileB, fileA}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	var rep struct {
		Benchmarks []struct {
			Source string `json:"source"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal([]byte(out.String()), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(rep.Benchmarks) != 2 || rep.Benchmarks[0].Source != fileA || rep.Benchmarks[1].Source != fileB {
		t.Errorf("same-name entries not ordered by source: %+v", rep.Benchmarks)
	}
}

func TestParseBenchEmptyInputFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.txt")
	if err := os.WriteFile(path, []byte("PASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", path}, &out, &errOut); code == 0 {
		t.Fatal("empty bench output parsed successfully")
	}
}

// TestParseBenchBaselineGate pins the CI regression gate: a benchmark
// that slowed beyond -threshold fails the run with a REGRESSED delta
// line; within threshold it passes and still prints the deltas.
func TestParseBenchBaselineGate(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "prev.json")
	prev := `{"benchmarks":[{"name":"BenchmarkX","runs":1,"metrics":{"ns/op":100}},{"name":"BenchmarkY","runs":1,"metrics":{"ns/op":100}}]}`
	if err := os.WriteFile(baseline, []byte(prev), 0o644); err != nil {
		t.Fatal(err)
	}
	current := filepath.Join(dir, "bench.txt")
	if err := os.WriteFile(current, []byte("BenchmarkX-4 \t 1 \t 130 ns/op\nBenchmarkY-4 \t 1 \t 105 ns/op\nPASS\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-parsebench", current, "-baseline", baseline, "-threshold", "15"}, &out, &errOut); code == 0 {
		t.Fatalf("a +30%% slowdown passed the 15%% gate:\n%s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "REGRESSED") || !strings.Contains(errOut.String(), "BenchmarkX") {
		t.Errorf("missing REGRESSED delta line:\n%s", errOut.String())
	}

	out.Reset()
	errOut.Reset()
	if code := run([]string{"-parsebench", current, "-baseline", baseline, "-threshold", "50"}, &out, &errOut); code != 0 {
		t.Fatalf("within-threshold run failed: %s", errOut.String())
	}
	if !strings.Contains(errOut.String(), "BenchmarkY") {
		t.Errorf("deltas not reported on a passing run:\n%s", errOut.String())
	}
	// The JSON artifact on stdout is unaffected by the gate.
	if !strings.Contains(out.String(), `"BenchmarkX"`) {
		t.Errorf("stdout JSON missing benchmarks:\n%s", out.String())
	}
}
