package main

// Bench-output parsing: `rtexp -parsebench file` converts the text
// output of `go test -bench` into a machine-readable JSON artifact, so
// CI can archive benchmark trajectories (BENCH_*.json) instead of
// grepping logs.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// BenchResult is one benchmark line: the name (procs suffix stripped),
// the iteration count, and every reported metric keyed by its unit
// (ns/op, B/op, allocs/op, custom b.ReportMetric units).
type BenchResult struct {
	Name    string             `json:"name"`
	Procs   int                `json:"procs,omitempty"`
	Runs    int64              `json:"runs"`
	Metrics map[string]float64 `json:"metrics"`
}

// BenchReport is the parsed artifact: the run's environment header plus
// every benchmark line, in file order.
type BenchReport struct {
	Goos       string        `json:"goos,omitempty"`
	Goarch     string        `json:"goarch,omitempty"`
	Pkg        string        `json:"pkg,omitempty"`
	CPU        string        `json:"cpu,omitempty"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// parseBench reads `go test -bench` text output. Unrecognized lines
// (test logs, PASS/ok trailers) are skipped — the parser is meant to run
// on a `| tee` of the raw CI log.
func parseBench(r io.Reader) (*BenchReport, error) {
	rep := &BenchReport{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Name, runs, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		runs, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		res := BenchResult{Runs: runs, Metrics: make(map[string]float64)}
		res.Name = fields[0]
		if i := strings.LastIndex(res.Name, "-"); i > 0 {
			if procs, err := strconv.Atoi(res.Name[i+1:]); err == nil {
				res.Name = res.Name[:i]
				res.Procs = procs
			}
		}
		ok := true
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				ok = false
				break
			}
			res.Metrics[fields[i+1]] = v
		}
		if !ok || len(res.Metrics) == 0 {
			continue
		}
		rep.Benchmarks = append(rep.Benchmarks, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rep.Benchmarks) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return rep, nil
}

// writeBenchJSON emits the parsed report as indented JSON.
func writeBenchJSON(w io.Writer, rep *BenchReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
