// Command rtexp regenerates the paper's evaluation: every table and
// figure in the experiment index (rtexp -list). With no flags it runs
// everything; -exp selects a comma-separated subset; -csv switches the
// output to machine-readable CSV. -parsebench turns `go test -bench`
// text output into a JSON artifact for CI benchmark trajectories;
// additional positional arguments name further input files — raw bench
// text or previously emitted BENCH_*.json artifacts (rtload's output,
// say) — merged into one JSON document. Each entry is annotated with
// its source file and the merged document is stably sorted by
// benchmark name, then source, so one input set produces byte-identical
// JSON regardless of argument order.
//
//	rtexp                      # all experiments, aligned tables
//	rtexp -exp fig18.5         # just the headline figure
//	rtexp -exp fig18.5,dsweep -csv
//	rtexp -list                # enumerate experiment IDs
//
// With -baseline the merged document is additionally compared against a
// previous artifact: every benchmark present in both (matched by name)
// gets a ns/op delta line on stderr, and any slowdown beyond -threshold
// percent makes rtexp exit non-zero — CI's regression gate.
//
//	go test -bench A . | tee bench.txt && rtexp -parsebench bench.txt > BENCH_A.json
//	rtexp -parsebench bench.txt BENCH_rtload.json > BENCH_all.json
//	rtexp -parsebench bench.txt -baseline BENCH_prev.json -threshold 15 > BENCH_new.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/benchfmt"
	"repro/internal/exp"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sel       = fs.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		list      = fs.Bool("list", false, "list experiment IDs and exit")
		bench     = fs.String("parsebench", "", "parse `go test -bench` text or BENCH JSON from the given file ('-' = stdin) plus any positional files, merge, and emit JSON")
		baseline  = fs.String("baseline", "", "with -parsebench: prior BENCH artifact to diff ns/op against (regressions beyond -threshold fail the run)")
		threshold = fs.Float64("threshold", 15, "with -baseline: max tolerated ns/op slowdown, percent")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *bench != "" {
		reports := make([]*benchfmt.Report, 0, 1+fs.NArg())
		for _, path := range append([]string{*bench}, fs.Args()...) {
			rep, err := benchfmt.ParseFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "rtexp: parsebench: %v\n", err)
				return 1
			}
			reports = append(reports, rep)
		}
		merged := benchfmt.Merge(reports...)
		merged.Sort()
		if err := merged.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "rtexp: parsebench: %v\n", err)
			return 1
		}
		if *baseline != "" {
			prev, err := benchfmt.ParseFile(*baseline)
			if err != nil {
				fmt.Fprintf(stderr, "rtexp: baseline: %v\n", err)
				return 1
			}
			regressed := 0
			for _, d := range benchfmt.Deltas(prev, merged) {
				verdict := "ok"
				if d.Pct > *threshold {
					verdict = "REGRESSED"
					regressed++
				}
				fmt.Fprintf(stderr, "rtexp: delta %-60s %14.1f -> %14.1f ns/op  %+7.1f%%  %s\n",
					d.Name, d.Baseline, d.Current, d.Pct, verdict)
			}
			if regressed > 0 {
				fmt.Fprintf(stderr, "rtexp: FAILED: %d benchmark(s) regressed more than %.0f%% over %s\n",
					regressed, *threshold, *baseline)
				return 1
			}
		}
		return 0
	}

	all := exp.All()
	if *list {
		for _, e := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", e.ID, e.Desc)
		}
		return 0
	}

	want := map[string]bool{}
	if *sel != "all" {
		for _, id := range strings.Split(*sel, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			if !knownID(all, id) {
				fmt.Fprintf(stderr, "rtexp: unknown experiment %q (use -list)\n", id)
				return 2
			}
		}
	}

	ran := 0
	for _, e := range all {
		if *sel != "all" && !want[e.ID] {
			continue
		}
		tb := e.Run()
		if *csv {
			fmt.Fprintf(stdout, "# %s — %s\n%s\n", e.ID, e.Desc, tb.CSV())
		} else {
			fmt.Fprintf(stdout, "%s\n", tb)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(stderr, "rtexp: nothing selected")
		return 2
	}
	return 0
}

func knownID(all []exp.Experiment, id string) bool {
	for _, e := range all {
		if e.ID == id {
			return true
		}
	}
	return false
}
