// Command rtexp regenerates the paper's evaluation: every table and
// figure in the experiment index (rtexp -list). With no flags it runs
// everything; -exp selects a comma-separated subset; -csv switches the
// output to machine-readable CSV. -parsebench turns `go test -bench`
// text output into a JSON artifact for CI benchmark trajectories;
// additional positional arguments name further input files — raw bench
// text or previously emitted BENCH_*.json artifacts (rtload's output,
// say) — merged into one JSON document. Each entry is annotated with
// its source file and the merged document is stably sorted by
// benchmark name, then source, so one input set produces byte-identical
// JSON regardless of argument order.
//
//	rtexp                      # all experiments, aligned tables
//	rtexp -exp fig18.5         # just the headline figure
//	rtexp -exp fig18.5,dsweep -csv
//	rtexp -list                # enumerate experiment IDs
//
// With -baseline the merged document is additionally compared against a
// previous artifact: every benchmark present in both (matched by name)
// gets a ns/op delta line on stderr, and any slowdown beyond -threshold
// percent makes rtexp exit non-zero — CI's regression gate.
//
//	go test -bench A . | tee bench.txt && rtexp -parsebench bench.txt > BENCH_A.json
//	rtexp -parsebench bench.txt BENCH_rtload.json > BENCH_all.json
//	rtexp -parsebench bench.txt -baseline BENCH_prev.json -threshold 15 > BENCH_new.json
//
// -sweep makes rtexp an experiment platform: the argument is a grid
// document (docs/experiments.md) declaring axes over scheme, scenario,
// churn rate, verification workers, batching, transport and failure
// policy. rtexp expands the grid into its cartesian product of cells,
// executes every cell — in-process, or against rtetherd daemons it
// boots and drains itself — and writes the merged per-cell BENCH
// document to -out. With -baseline the same regression gate runs over
// the cells: aligned delta lines on stderr, non-zero exit on any cell
// slower than -threshold percent.
//
//	rtexp -sweep grid.json -out BENCH_sweep.json
//	rtexp -sweep grid.json -baseline BENCH_sweep_prev.json -threshold 15
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/internal/benchfmt"
	"repro/internal/exp"
	"repro/internal/sweep"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rtexp", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		sel       = fs.String("exp", "all", "comma-separated experiment IDs, or 'all'")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned tables")
		list      = fs.Bool("list", false, "list experiment IDs and exit")
		bench     = fs.String("parsebench", "", "parse `go test -bench` text or BENCH JSON from the given file ('-' = stdin) plus any positional files, merge, and emit JSON")
		sweepFile = fs.String("sweep", "", "grid document: expand the declared axes, execute every cell, emit the merged BENCH JSON")
		out       = fs.String("out", "-", "with -sweep: BENCH JSON output file ('-' = stdout)")
		baseline  = fs.String("baseline", "", "with -parsebench or -sweep: prior BENCH artifact to diff ns/op against (regressions beyond -threshold fail the run)")
		threshold = fs.Float64("threshold", 15, "with -baseline: max tolerated ns/op slowdown, percent")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *sweepFile != "" && *bench != "" {
		fmt.Fprintln(stderr, "rtexp: -sweep and -parsebench are mutually exclusive")
		return 2
	}

	if *sweepFile != "" {
		return runSweep(*sweepFile, *out, *baseline, *threshold, stdout, stderr)
	}

	if *bench != "" {
		reports := make([]*benchfmt.Report, 0, 1+fs.NArg())
		for _, path := range append([]string{*bench}, fs.Args()...) {
			rep, err := benchfmt.ParseFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "rtexp: parsebench: %v\n", err)
				return 1
			}
			reports = append(reports, rep)
		}
		merged := benchfmt.Merge(reports...)
		merged.Sort()
		if err := merged.WriteJSON(stdout); err != nil {
			fmt.Fprintf(stderr, "rtexp: parsebench: %v\n", err)
			return 1
		}
		if *baseline != "" {
			if code := gate(merged, *baseline, *threshold, stderr); code != 0 {
				return code
			}
		}
		return 0
	}

	all := exp.All()
	if *list {
		for _, e := range all {
			fmt.Fprintf(stdout, "%-12s %s\n", e.ID, e.Desc)
		}
		return 0
	}

	want := map[string]bool{}
	if *sel != "all" {
		for _, id := range strings.Split(*sel, ",") {
			want[strings.TrimSpace(id)] = true
		}
		for id := range want {
			if !knownID(all, id) {
				fmt.Fprintf(stderr, "rtexp: unknown experiment %q (use -list)\n", id)
				return 2
			}
		}
	}

	ran := 0
	for _, e := range all {
		if *sel != "all" && !want[e.ID] {
			continue
		}
		tb := e.Run()
		if *csv {
			fmt.Fprintf(stdout, "# %s — %s\n%s\n", e.ID, e.Desc, tb.CSV())
		} else {
			fmt.Fprintf(stdout, "%s\n", tb)
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(stderr, "rtexp: nothing selected")
		return 2
	}
	return 0
}

// runSweep executes a grid document end to end: expand, run every
// cell, write the merged BENCH document, and optionally gate it against
// a stored baseline.
func runSweep(gridPath, out, baseline string, threshold float64, stdout, stderr io.Writer) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	g, err := sweep.LoadGridFile(gridPath)
	if err != nil {
		fmt.Fprintf(stderr, "rtexp: sweep: %v\n", err)
		return 1
	}
	rep, err := g.Run(ctx, sweep.Options{Dir: filepath.Dir(gridPath), Progress: stderr})
	if err != nil {
		fmt.Fprintf(stderr, "rtexp: sweep: %v\n", err)
		return 1
	}
	w := stdout
	if out != "-" && out != "" {
		f, err := os.Create(out)
		if err != nil {
			fmt.Fprintf(stderr, "rtexp: sweep: %v\n", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	if err := rep.WriteJSON(w); err != nil {
		fmt.Fprintf(stderr, "rtexp: sweep: %v\n", err)
		return 1
	}
	if baseline != "" {
		return gate(rep, baseline, threshold, stderr)
	}
	return 0
}

// gate diffs current against the stored baseline artifact and renders
// the shared delta lines; non-zero means at least one benchmark slowed
// down beyond the threshold (or the baseline was unreadable).
func gate(current *benchfmt.Report, baseline string, threshold float64, stderr io.Writer) int {
	prev, err := benchfmt.ParseFile(baseline)
	if err != nil {
		fmt.Fprintf(stderr, "rtexp: baseline: %v\n", err)
		return 1
	}
	regressed := benchfmt.FormatDeltas(stderr, benchfmt.Deltas(prev, current), threshold, "rtexp: delta")
	if regressed > 0 {
		fmt.Fprintf(stderr, "rtexp: FAILED: %d benchmark(s) regressed more than %.0f%% over %s\n",
			regressed, threshold, baseline)
		return 1
	}
	return 0
}

func knownID(all []exp.Experiment, id string) bool {
	for _, e := range all {
		if e.ID == id {
			return true
		}
	}
	return false
}
